// CsrBlock is a pure layout change: packing a partition and running
// the CSR kernels must produce bit-for-bit the results of the
// per-DataPoint kernels — same floating-point ops in the same order,
// same RNG consumption, same work accounting. EXPECT_EQ on doubles is
// intentional throughout.

#include "core/csr_block.h"

#include <gtest/gtest.h>

#include "core/gd.h"
#include "data/partition.h"
#include "data/synthetic.h"

namespace mllibstar {
namespace {

Dataset TestData() {
  SyntheticSpec spec;
  spec.name = "csr";
  spec.num_instances = 300;
  spec.num_features = 80;
  spec.avg_nnz = 7;
  spec.seed = 19;
  return GenerateSynthetic(spec);
}

std::vector<DataPoint> Points(const Dataset& data) {
  std::vector<DataPoint> points;
  points.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) points.push_back(data.point(i));
  return points;
}

void ExpectSameVector(const DenseVector& a, const DenseVector& b) {
  ASSERT_EQ(a.dim(), b.dim());
  for (size_t i = 0; i < a.dim(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "coordinate " << i;
  }
}

TEST(CsrBlockTest, RoundTripsEveryPoint) {
  const Dataset data = TestData();
  const std::vector<DataPoint> points = Points(data);
  const CsrBlock block = CsrBlock::FromPoints(points);

  ASSERT_EQ(block.rows(), points.size());
  EXPECT_EQ(block.offsets.size(), points.size() + 1);
  EXPECT_EQ(block.offsets.front(), 0u);
  EXPECT_EQ(block.offsets.back(), block.nnz());
  for (size_t i = 0; i < points.size(); ++i) {
    const DataPoint back = block.PointAt(i);
    EXPECT_EQ(back.label, points[i].label);
    ASSERT_EQ(back.features.indices, points[i].features.indices);
    ASSERT_EQ(back.features.values, points[i].features.values);
  }
}

TEST(CsrBlockTest, EmptyInputGivesEmptyBlock) {
  const CsrBlock block = CsrBlock::FromPoints({});
  EXPECT_EQ(block.rows(), 0u);
  EXPECT_EQ(block.nnz(), 0u);
  ASSERT_EQ(block.offsets.size(), 1u);
  EXPECT_EQ(block.offsets[0], 0u);
}

TEST(PartitionCsrTest, MatchesRoundRobinPartitioning) {
  const Dataset data = TestData();
  const size_t k = 7;  // does not divide 300: uneven partitions
  const std::vector<std::vector<DataPoint>> parts =
      PartitionRoundRobin(data, k);
  const std::vector<CsrBlock> blocks = PartitionCsr(data, k);

  ASSERT_EQ(blocks.size(), parts.size());
  for (size_t r = 0; r < k; ++r) {
    ASSERT_EQ(blocks[r].rows(), parts[r].size()) << "partition " << r;
    for (size_t i = 0; i < parts[r].size(); ++i) {
      const DataPoint back = blocks[r].PointAt(i);
      EXPECT_EQ(back.label, parts[r][i].label);
      ASSERT_EQ(back.features.indices, parts[r][i].features.indices);
      ASSERT_EQ(back.features.values, parts[r][i].features.values);
    }
  }
}

TEST(CsrKernelTest, BatchGradientMatchesDataPointKernel) {
  const Dataset data = TestData();
  const std::vector<DataPoint> points = Points(data);
  const CsrBlock block = CsrBlock::FromPoints(points);
  auto loss = MakeLoss(LossKind::kLogistic);

  Rng rng(3);
  const std::vector<size_t> batch = SampleBatch(points.size(), 40, &rng);
  DenseVector w(data.num_features());
  for (size_t i = 0; i < w.dim(); ++i) {
    w[i] = 0.01 * static_cast<double>(i % 13) - 0.05;
  }

  DenseVector g_points(w.dim());
  DenseVector g_block(w.dim());
  const ComputeStats a =
      AccumulateBatchGradient(points, batch, *loss, w, &g_points);
  const ComputeStats b =
      AccumulateBatchGradient(block, batch, *loss, w, &g_block);
  EXPECT_EQ(a.nnz_processed, b.nnz_processed);
  ExpectSameVector(g_points, g_block);
}

TEST(CsrKernelTest, LossGradientMatchesSeparateLoops) {
  const Dataset data = TestData();
  const std::vector<DataPoint> points = Points(data);
  const CsrBlock block = CsrBlock::FromPoints(points);
  auto loss = MakeLoss(LossKind::kHinge);

  DenseVector w(data.num_features());
  for (size_t i = 0; i < w.dim(); ++i) {
    w[i] = 0.02 * static_cast<double>(i % 7) - 0.03;
  }

  // Reference: the unfused per-point loop over DataPoints.
  DenseVector g_ref(w.dim());
  double loss_ref = 0.0;
  uint64_t work_ref = 0;
  for (const DataPoint& p : points) {
    const double margin = w.Dot(p.features);
    const double dl = loss->Derivative(margin, p.label);
    loss_ref += loss->Value(margin, p.label);
    work_ref += p.nnz();
    if (dl != 0.0) {
      g_ref.AddScaled(p.features, dl);
      work_ref += p.nnz();
    }
  }

  for (const auto& run : {0, 1}) {
    DenseVector g(w.dim());
    double loss_sum = 0.0;
    const ComputeStats stats =
        run == 0 ? AccumulateLossGradient(points, *loss, w, &g, &loss_sum)
                 : AccumulateLossGradient(block, *loss, w, &g, &loss_sum);
    EXPECT_EQ(stats.nnz_processed, work_ref);
    EXPECT_EQ(loss_sum, loss_ref);
    ExpectSameVector(g, g_ref);
  }
}

TEST(CsrKernelTest, SgdEpochMatchesDataPointKernel) {
  const Dataset data = TestData();
  const std::vector<DataPoint> points = Points(data);
  const CsrBlock block = CsrBlock::FromPoints(points);
  auto loss = MakeLoss(LossKind::kLogistic);

  for (const RegularizerKind kind :
       {RegularizerKind::kNone, RegularizerKind::kL2}) {
    for (const bool lazy : {false, true}) {
      auto reg = MakeRegularizer(kind, 0.01);
      Rng rng_a(11), rng_b(11);
      DenseVector w_a(data.num_features());
      DenseVector w_b(data.num_features());
      const ComputeStats a =
          LocalSgdEpoch(points, *loss, *reg, 0.2, lazy, &rng_a, &w_a);
      const ComputeStats b =
          LocalSgdEpoch(block, *loss, *reg, 0.2, lazy, &rng_b, &w_b);
      EXPECT_EQ(a.nnz_processed, b.nnz_processed);
      EXPECT_EQ(a.model_updates, b.model_updates);
      ExpectSameVector(w_a, w_b);
      EXPECT_EQ(rng_a.NextUint64(1u << 30), rng_b.NextUint64(1u << 30))
          << "RNG consumption diverged";
    }
  }
}

TEST(CsrKernelTest, SubsetEpochMatchesCopyingTheRowsOut) {
  const Dataset data = TestData();
  const std::vector<DataPoint> points = Points(data);
  const CsrBlock block = CsrBlock::FromPoints(points);
  auto loss = MakeLoss(LossKind::kLogistic);
  auto reg = MakeRegularizer(RegularizerKind::kNone, 0.0);

  Rng rng_a(23), rng_b(23);
  const std::vector<size_t> batch_a = SampleBatch(points.size(), 50, &rng_a);
  const std::vector<size_t> batch_b = SampleBatch(points.size(), 50, &rng_b);
  ASSERT_EQ(batch_a, batch_b);

  std::vector<DataPoint> copied;
  copied.reserve(batch_a.size());
  for (size_t idx : batch_a) copied.push_back(points[idx]);

  DenseVector w_a(data.num_features());
  DenseVector w_b(data.num_features());
  const ComputeStats a =
      LocalSgdEpoch(copied, *loss, *reg, 0.3, true, &rng_a, &w_a);
  const ComputeStats b =
      LocalSgdEpoch(block, batch_b, *loss, *reg, 0.3, true, &rng_b, &w_b);
  EXPECT_EQ(a.nnz_processed, b.nnz_processed);
  EXPECT_EQ(a.model_updates, b.model_updates);
  ExpectSameVector(w_a, w_b);
}

TEST(CsrKernelTest, OptimizerEpochMatchesDataPointKernel) {
  const Dataset data = TestData();
  const std::vector<DataPoint> points = Points(data);
  const CsrBlock block = CsrBlock::FromPoints(points);
  auto loss = MakeLoss(LossKind::kLogistic);
  auto reg = MakeRegularizer(RegularizerKind::kL2, 0.01);

  LocalOptimizerConfig opt_config;
  opt_config.kind = LocalOptimizerKind::kAdam;
  auto opt_a = MakeLocalOptimizer(opt_config, data.num_features());
  auto opt_b = MakeLocalOptimizer(opt_config, data.num_features());

  Rng rng_a(7), rng_b(7);
  DenseVector w_a(data.num_features());
  DenseVector w_b(data.num_features());
  const ComputeStats a = LocalOptimizerEpoch(points, *loss, *reg, 0.1,
                                             opt_a.get(), &rng_a, &w_a);
  const ComputeStats b = LocalOptimizerEpoch(block, *loss, *reg, 0.1,
                                             opt_b.get(), &rng_b, &w_b);
  EXPECT_EQ(a.nnz_processed, b.nnz_processed);
  EXPECT_EQ(a.model_updates, b.model_updates);
  ExpectSameVector(w_a, w_b);
}

TEST(CsrKernelTest, MiniBatchGdMatchesDataPointKernel) {
  const Dataset data = TestData();
  const std::vector<DataPoint> points = Points(data);
  const CsrBlock block = CsrBlock::FromPoints(points);
  auto loss = MakeLoss(LossKind::kLogistic);
  auto reg = MakeRegularizer(RegularizerKind::kL2, 0.05);

  Rng rng_a(29), rng_b(29);
  DenseVector w_a(data.num_features());
  DenseVector w_b(data.num_features());
  const ComputeStats a = LocalMiniBatchGd(points, *loss, *reg, 0.1, 30, 5,
                                          &rng_a, &w_a);
  const ComputeStats b =
      LocalMiniBatchGd(block, *loss, *reg, 0.1, 30, 5, &rng_b, &w_b);
  EXPECT_EQ(a.nnz_processed, b.nnz_processed);
  EXPECT_EQ(a.model_updates, b.model_updates);
  ExpectSameVector(w_a, w_b);
}

TEST(SampleBatchFloydTest, SmallFractionIsUniqueAndInRange) {
  Rng rng(41);
  // batch_size * 4 < n: exercises the Floyd's-sampling path.
  const std::vector<size_t> batch = SampleBatch(1000, 50, &rng);
  ASSERT_EQ(batch.size(), 50u);
  std::vector<bool> seen(1000, false);
  for (size_t idx : batch) {
    ASSERT_LT(idx, 1000u);
    EXPECT_FALSE(seen[idx]) << "duplicate index " << idx;
    seen[idx] = true;
  }
}

TEST(SampleBatchFloydTest, CoversAllIndicesEventually) {
  // Every index must be reachable (uniformity smoke check).
  std::vector<bool> seen(64, false);
  Rng rng(13);
  for (int trial = 0; trial < 400; ++trial) {
    for (size_t idx : SampleBatch(64, 8, &rng)) seen[idx] = true;
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "index " << i << " never sampled";
  }
}

}  // namespace
}  // namespace mllibstar
