#include "data/libsvm.h"

#include <gtest/gtest.h>

#include <fstream>

namespace mllibstar {
namespace {

std::string WriteTempFile(const std::string& name,
                          const std::string& contents) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(LibSvmReadTest, ParsesOneBasedFile) {
  const std::string path = WriteTempFile(
      "onebased.svm", "+1 1:0.5 3:1.5\n-1 2:2.0\n");
  auto result = ReadLibSvm(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& ds = *result;
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.num_features(), 3u);
  EXPECT_DOUBLE_EQ(ds.point(0).label, 1.0);
  EXPECT_EQ(ds.point(0).features.indices[0], 0u);  // shifted to 0-based
  EXPECT_DOUBLE_EQ(ds.point(0).features.values[1], 1.5);
  EXPECT_DOUBLE_EQ(ds.point(1).label, -1.0);
}

TEST(LibSvmReadTest, ParsesZeroBasedFile) {
  const std::string path = WriteTempFile(
      "zerobased.svm", "1 0:1.0 4:2.0\n");
  auto result = ReadLibSvm(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_features(), 5u);
  EXPECT_EQ(result->point(0).features.indices[0], 0u);
}

TEST(LibSvmReadTest, MapsZeroOneLabels) {
  const std::string path = WriteTempFile("zeroone.svm", "0 1:1\n1 1:1\n");
  auto result = ReadLibSvm(path);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->point(0).label, -1.0);
  EXPECT_DOUBLE_EQ(result->point(1).label, 1.0);
}

TEST(LibSvmReadTest, SkipsCommentsAndBlankLines) {
  const std::string path = WriteTempFile(
      "comments.svm", "# header\n\n+1 1:1\n   \n-1 2:1\n");
  auto result = ReadLibSvm(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(LibSvmReadTest, ForcedFeatureCount) {
  const std::string path = WriteTempFile("forced.svm", "+1 1:1\n");
  auto result = ReadLibSvm(path, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_features(), 100u);
}

TEST(LibSvmReadTest, MissingFileIsIoError) {
  auto result = ReadLibSvm("/does/not/exist.svm");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(LibSvmReadTest, MalformedTokenIsInvalidArgument) {
  const std::string path = WriteTempFile("bad.svm", "+1 nonsense\n");
  auto result = ReadLibSvm(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LibSvmReadTest, NegativeIndexRejected) {
  const std::string path = WriteTempFile("neg.svm", "+1 -2:1\n");
  auto result = ReadLibSvm(path);
  EXPECT_FALSE(result.ok());
}

TEST(LibSvmRoundTripTest, WriteThenReadPreservesData) {
  Dataset ds(4, "rt");
  DataPoint p1;
  p1.label = 1.0;
  p1.features.Push(0, 0.5);
  p1.features.Push(3, -1.25);
  ds.Add(p1);
  DataPoint p2;
  p2.label = -1.0;
  p2.features.Push(1, 2.0);
  ds.Add(p2);

  const std::string path = testing::TempDir() + "/roundtrip.svm";
  ASSERT_TRUE(WriteLibSvm(ds, path).ok());
  auto result = ReadLibSvm(path, 4);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_DOUBLE_EQ(result->point(0).label, 1.0);
  EXPECT_EQ(result->point(0).features.indices[1], 3u);
  EXPECT_DOUBLE_EQ(result->point(0).features.values[1], -1.25);
  EXPECT_DOUBLE_EQ(result->point(1).features.values[0], 2.0);
}

}  // namespace
}  // namespace mllibstar
