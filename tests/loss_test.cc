#include "core/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mllibstar {
namespace {

// Numerical derivative for property checks.
double NumericDerivative(const Loss& loss, double margin, double label) {
  const double h = 1e-6;
  return (loss.Value(margin + h, label) - loss.Value(margin - h, label)) /
         (2 * h);
}

TEST(LogisticLossTest, ValueAtZeroMargin) {
  auto loss = MakeLoss(LossKind::kLogistic);
  EXPECT_NEAR(loss->Value(0.0, 1.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(loss->Value(0.0, -1.0), std::log(2.0), 1e-12);
}

TEST(LogisticLossTest, LargeMarginsAreStable) {
  auto loss = MakeLoss(LossKind::kLogistic);
  // Correctly classified with huge margin: loss ~ 0, no overflow.
  EXPECT_NEAR(loss->Value(1000.0, 1.0), 0.0, 1e-12);
  // Misclassified with huge margin: loss ~ |margin|, no overflow.
  EXPECT_NEAR(loss->Value(-1000.0, 1.0), 1000.0, 1e-9);
  EXPECT_TRUE(std::isfinite(loss->Derivative(-1000.0, 1.0)));
  EXPECT_TRUE(std::isfinite(loss->Derivative(1000.0, 1.0)));
}

TEST(LogisticLossTest, DerivativeSign) {
  auto loss = MakeLoss(LossKind::kLogistic);
  // For label +1 the derivative w.r.t. margin is always negative.
  EXPECT_LT(loss->Derivative(0.0, 1.0), 0.0);
  EXPECT_LT(loss->Derivative(5.0, 1.0), 0.0);
  // For label -1 it is always positive.
  EXPECT_GT(loss->Derivative(0.0, -1.0), 0.0);
}

TEST(HingeLossTest, ValueAndFlatRegion) {
  auto loss = MakeLoss(LossKind::kHinge);
  EXPECT_DOUBLE_EQ(loss->Value(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(loss->Value(2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(loss->Value(-1.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(loss->Derivative(2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(loss->Derivative(0.5, 1.0), -1.0);
}

TEST(SquaredLossTest, ValueAndDerivative) {
  auto loss = MakeLoss(LossKind::kSquared);
  EXPECT_DOUBLE_EQ(loss->Value(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(loss->Derivative(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(loss->Derivative(1.0, 1.0), 0.0);
}

TEST(LossFactoryTest, KindsRoundTrip) {
  EXPECT_EQ(MakeLoss(LossKind::kLogistic)->kind(), LossKind::kLogistic);
  EXPECT_EQ(MakeLoss(LossKind::kHinge)->kind(), LossKind::kHinge);
  EXPECT_EQ(MakeLoss(LossKind::kSquared)->kind(), LossKind::kSquared);
  EXPECT_EQ(MakeLoss(LossKind::kLogistic)->name(), "logistic");
}

TEST(LossFactoryTest, FromName) {
  EXPECT_EQ(LossKindFromName("logistic"), LossKind::kLogistic);
  EXPECT_EQ(LossKindFromName("squared"), LossKind::kSquared);
  EXPECT_EQ(LossKindFromName("hinge"), LossKind::kHinge);
  EXPECT_EQ(LossKindFromName("banana"), LossKind::kHinge);
}

// Parameterized property suite: every loss is convex-consistent with
// its derivative, checked against numerical differentiation away from
// the hinge kink.
class LossDerivativeTest : public testing::TestWithParam<LossKind> {};

TEST_P(LossDerivativeTest, MatchesNumericalDerivative) {
  auto loss = MakeLoss(GetParam());
  for (double label : {-1.0, 1.0}) {
    for (double margin = -3.0; margin <= 3.0; margin += 0.37) {
      if (GetParam() == LossKind::kHinge &&
          std::fabs(label * margin - 1.0) < 0.01) {
        continue;  // kink
      }
      EXPECT_NEAR(loss->Derivative(margin, label),
                  NumericDerivative(*loss, margin, label), 1e-4)
          << loss->name() << " margin=" << margin << " label=" << label;
    }
  }
}

TEST_P(LossDerivativeTest, NonNegativeValue) {
  auto loss = MakeLoss(GetParam());
  for (double label : {-1.0, 1.0}) {
    for (double margin = -10.0; margin <= 10.0; margin += 0.5) {
      EXPECT_GE(loss->Value(margin, label), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LossDerivativeTest,
                         testing::Values(LossKind::kLogistic,
                                         LossKind::kHinge,
                                         LossKind::kSquared));

}  // namespace
}  // namespace mllibstar
