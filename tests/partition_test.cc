#include "data/partition.h"

#include <gtest/gtest.h>

namespace mllibstar {
namespace {

Dataset MakeDataset(size_t n, size_t dim = 100) {
  Dataset ds(dim);
  for (size_t i = 0; i < n; ++i) {
    DataPoint p;
    p.label = (i % 2 == 0) ? 1.0 : -1.0;
    p.features.Push(static_cast<FeatureIndex>(i % dim), 1.0);
    ds.Add(p);
  }
  return ds;
}

TEST(PartitionDataTest, RoundRobinBalanced) {
  const Dataset ds = MakeDataset(10);
  const auto parts = PartitionRoundRobin(ds, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 4u);
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 3u);
}

TEST(PartitionDataTest, RoundRobinCoversAllPoints) {
  const Dataset ds = MakeDataset(17);
  const auto parts = PartitionRoundRobin(ds, 4);
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  EXPECT_EQ(total, 17u);
}

TEST(PartitionDataTest, ContiguousPreservesOrder) {
  const Dataset ds = MakeDataset(10, 10);
  const auto parts = PartitionContiguous(ds, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 4u);  // 10 = 4+3+3
  EXPECT_EQ(parts[0][0].features.indices[0], 0u);
  EXPECT_EQ(parts[1][0].features.indices[0], 4u);
  EXPECT_EQ(parts[2][0].features.indices[0], 7u);
}

TEST(PartitionDataTest, MorePartitionsThanPoints) {
  const Dataset ds = MakeDataset(2);
  const auto parts = PartitionRoundRobin(ds, 5);
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0].size(), 1u);
  EXPECT_EQ(parts[1].size(), 1u);
  EXPECT_TRUE(parts[2].empty());
}

TEST(PartitionModelTest, RangesTileTheModel) {
  const auto ranges = PartitionModel(10, 3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].end, 4u);  // 10 = 4+3+3
  EXPECT_EQ(ranges[1].begin, 4u);
  EXPECT_EQ(ranges[2].end, 10u);
  size_t total = 0;
  for (const auto& r : ranges) total += r.size();
  EXPECT_EQ(total, 10u);
}

TEST(PartitionModelTest, ExactDivision) {
  const auto ranges = PartitionModel(8, 4);
  for (const auto& r : ranges) EXPECT_EQ(r.size(), 2u);
}

TEST(PartitionModelTest, MoreWorkersThanCoordinates) {
  const auto ranges = PartitionModel(2, 4);
  EXPECT_EQ(ranges[0].size(), 1u);
  EXPECT_EQ(ranges[1].size(), 1u);
  EXPECT_EQ(ranges[2].size(), 0u);
  EXPECT_EQ(ranges[3].size(), 0u);
}

TEST(PartitionModelTest, OwnerLookupAgreesWithRanges) {
  const auto ranges = PartitionModel(100, 7);
  for (FeatureIndex i = 0; i < 100; ++i) {
    const size_t owner = OwnerOfCoordinate(ranges, i);
    EXPECT_TRUE(ranges[owner].Contains(i)) << "i=" << i;
  }
}

TEST(PartitionModelTest, ContainsIsHalfOpen) {
  ModelRange r{5, 8};
  EXPECT_FALSE(r.Contains(4));
  EXPECT_TRUE(r.Contains(5));
  EXPECT_TRUE(r.Contains(7));
  EXPECT_FALSE(r.Contains(8));
}

}  // namespace
}  // namespace mllibstar
