#include "engine/rdd.h"

#include <gtest/gtest.h>

#include <numeric>

namespace mllibstar {
namespace {

ClusterConfig TestConfig(size_t workers = 4) {
  ClusterConfig config = ClusterConfig::Cluster1(workers);
  config.straggler_sigma = 0.0;
  return config;
}

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(RddTest, ParallelizeDistributesRoundRobin) {
  SparkCluster cluster(TestConfig(3));
  auto rdd = Rdd<int>::Parallelize(&cluster, Iota(10));
  EXPECT_EQ(rdd.num_partitions(), 3u);
  EXPECT_EQ(rdd.Count(), 10u);
}

TEST(RddTest, CountOnEmpty) {
  SparkCluster cluster(TestConfig());
  auto rdd = Rdd<int>::Parallelize(&cluster, {});
  EXPECT_EQ(rdd.Count(), 0u);
}

TEST(RddTest, MapTransformsEveryElement) {
  SparkCluster cluster(TestConfig());
  auto rdd = Rdd<int>::Parallelize(&cluster, Iota(8));
  auto doubled = rdd.Map<int>([](const int& x) { return 2 * x; });
  const std::vector<int> all = doubled.Collect(4);
  int sum = 0;
  for (int x : all) sum += x;
  EXPECT_EQ(sum, 2 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(RddTest, MapChangesType) {
  SparkCluster cluster(TestConfig());
  auto rdd = Rdd<int>::Parallelize(&cluster, Iota(4));
  auto strings =
      rdd.Map<std::string>([](const int& x) { return std::to_string(x); });
  const auto all = strings.Collect(8);
  EXPECT_EQ(all.size(), 4u);
}

TEST(RddTest, FilterKeepsMatching) {
  SparkCluster cluster(TestConfig());
  auto rdd = Rdd<int>::Parallelize(&cluster, Iota(20));
  auto evens = rdd.Filter([](const int& x) { return x % 2 == 0; });
  EXPECT_EQ(evens.Count(), 10u);
}

TEST(RddTest, ChainedLazyTransformsComposeOnce) {
  SparkCluster cluster(TestConfig());
  auto rdd = Rdd<int>::Parallelize(&cluster, Iota(100));
  auto result = rdd.Map<int>([](const int& x) { return x + 1; })
                    .Filter([](const int& x) { return x % 3 == 0; })
                    .Map<int>([](const int& x) { return x * x; });
  // Elements x+1 in [1,100] divisible by 3: 3,6,...,99 -> 33 items.
  EXPECT_EQ(result.Count(), 33u);
}

TEST(RddTest, TreeAggregateSums) {
  SparkCluster cluster(TestConfig());
  auto rdd = Rdd<int>::Parallelize(&cluster, Iota(50));
  const int sum = rdd.TreeAggregate(
      0, [](int acc, const int& x) { return acc + x; }, /*bytes=*/8);
  EXPECT_EQ(sum, 49 * 50 / 2);
}

TEST(RddTest, MapPartitionsSeesWholePartition) {
  SparkCluster cluster(TestConfig(2));
  auto rdd = Rdd<int>::Parallelize(&cluster, Iota(10));
  auto sizes = rdd.MapPartitions<size_t>(
      [](const std::vector<int>& items)
          -> std::pair<std::vector<size_t>, uint64_t> {
        return {{items.size()}, items.size()};
      });
  const auto all = sizes.Collect(8);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0] + all[1], 10u);
}

TEST(RddTest, ActionsChargeSimulatedTime) {
  SparkCluster cluster(TestConfig());
  auto rdd = Rdd<int>::Parallelize(&cluster, Iota(1000));
  const SimTime before = cluster.Now();
  rdd.Map<int>([](const int& x) { return x; }, /*work_per_item=*/1000)
      .Count();
  EXPECT_GT(cluster.Now(), before);
}

TEST(RddTest, CacheAvoidsRecomputeWork) {
  // Without cache, two actions charge the expensive map twice; with
  // cache, the second action is nearly free.
  const uint64_t heavy = 100000;

  SparkCluster uncached_cluster(TestConfig());
  auto uncached = Rdd<int>::Parallelize(&uncached_cluster, Iota(100))
                      .Map<int>([](const int& x) { return x; }, heavy);
  uncached.Count();
  uncached.Count();
  const SimTime uncached_time = uncached_cluster.Now();

  SparkCluster cached_cluster(TestConfig());
  auto cached = Rdd<int>::Parallelize(&cached_cluster, Iota(100))
                    .Map<int>([](const int& x) { return x; }, heavy);
  cached.Cache();
  cached.Count();
  cached.Count();
  const SimTime cached_time = cached_cluster.Now();

  EXPECT_LT(cached_time, uncached_time * 0.75);
}

TEST(RddTest, CachePreservesContents) {
  SparkCluster cluster(TestConfig());
  auto rdd = Rdd<int>::Parallelize(&cluster, Iota(30))
                 .Map<int>([](const int& x) { return x * 3; });
  rdd.Cache();
  const int sum = rdd.TreeAggregate(
      0, [](int acc, const int& x) { return acc + x; }, 8);
  EXPECT_EQ(sum, 3 * 29 * 30 / 2);
}

TEST(RddTest, CollectReturnsAllElements) {
  SparkCluster cluster(TestConfig(3));
  auto rdd = Rdd<int>::Parallelize(&cluster, Iota(11));
  const std::vector<int> all = rdd.Collect(4);
  EXPECT_EQ(all.size(), 11u);
  int sum = 0;
  for (int x : all) sum += x;
  EXPECT_EQ(sum, 55);
}

TEST(RddTest, StagesAppearInTrace) {
  SparkCluster cluster(TestConfig());
  auto rdd = Rdd<int>::Parallelize(&cluster, Iota(10));
  rdd.Count();
  rdd.Count();
  EXPECT_GE(cluster.trace().stages().size(), 2u);
}

}  // namespace
}  // namespace mllibstar
