#include "ps/parameter_server.h"

#include <gtest/gtest.h>

namespace mllibstar {
namespace {

ClusterConfig PsClusterConfig(size_t workers, size_t shards) {
  ClusterConfig config = ClusterConfig::Cluster1(workers);
  config.straggler_sigma = 0.0;
  config.num_servers = shards;
  return config;
}

PsConfig DefaultPs(size_t shards) {
  PsConfig ps;
  ps.num_shards = shards;
  return ps;
}

TEST(PsContextTest, ModelStartsAtZero) {
  SimCluster sim(PsClusterConfig(2, 2));
  PsContext ps(&sim, 10, DefaultPs(2));
  EXPECT_EQ(ps.dim(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(ps.model()[i], 0.0);
}

TEST(PsContextTest, PullAdvancesWorkerAndShards) {
  SimCluster sim(PsClusterConfig(2, 2));
  PsContext ps(&sim, 1000, DefaultPs(2));
  const SimTime done = ps.TimePull(&sim.worker(0));
  EXPECT_GT(done, 0.0);
  EXPECT_DOUBLE_EQ(sim.worker(0).clock, done);
  EXPECT_GT(sim.server(0).clock, 0.0);
  EXPECT_GT(sim.server(1).clock, 0.0);
  EXPECT_DOUBLE_EQ(sim.worker(1).clock, 0.0);
}

TEST(PsContextTest, ConcurrentPullsQueueAtShards) {
  SimCluster sim(PsClusterConfig(2, 1));
  PsConfig ps_config = DefaultPs(1);
  PsContext ps(&sim, 100000, ps_config);
  const SimTime first = ps.TimePull(&sim.worker(0));
  const SimTime second = ps.TimePull(&sim.worker(1));
  // The single shard's link serializes the two transfers.
  EXPECT_GT(second, first);
}

TEST(PsContextTest, MoreShardsServeFaster) {
  // Two workers pulling a large model: with 4 shards the per-shard
  // slices are smaller and queueing shrinks.
  SimCluster sim1(PsClusterConfig(4, 1));
  PsContext one(&sim1, 400000, DefaultPs(1));
  SimTime one_done = 0.0;
  for (size_t r = 0; r < 4; ++r) {
    one_done = std::max(one_done, one.TimePull(&sim1.worker(r)));
  }

  SimCluster sim4(PsClusterConfig(4, 4));
  PsContext four(&sim4, 400000, DefaultPs(4));
  SimTime four_done = 0.0;
  for (size_t r = 0; r < 4; ++r) {
    four_done = std::max(four_done, four.TimePull(&sim4.worker(r)));
  }
  EXPECT_LT(four_done, one_done);
}

TEST(PsContextTest, PushCountsBytes) {
  SimCluster sim(PsClusterConfig(1, 2));
  PsContext ps(&sim, 1000, DefaultPs(2));
  EXPECT_EQ(ps.total_bytes(), 0u);
  ps.TimePull(&sim.worker(0));
  ps.TimePush(&sim.worker(0));
  EXPECT_EQ(ps.total_bytes(), 2u * 8u * 1000u);
}

TEST(PsContextTest, ApplyDeltaSums) {
  SimCluster sim(PsClusterConfig(1, 1));
  PsConfig config = DefaultPs(1);
  config.delta_scale = 0.5;
  PsContext ps(&sim, 3, config);
  DenseVector delta(std::vector<double>{2.0, 0.0, -4.0});
  ps.ApplyDelta(delta);
  ps.ApplyDelta(delta);
  EXPECT_DOUBLE_EQ(ps.model()[0], 2.0);
  EXPECT_DOUBLE_EQ(ps.model()[2], -4.0);
}

TEST(PsContextTest, AverageModels) {
  SimCluster sim(PsClusterConfig(1, 1));
  PsContext ps(&sim, 2, DefaultPs(1));
  ps.AccumulateForAverage(DenseVector(std::vector<double>{2.0, 4.0}));
  ps.AccumulateForAverage(DenseVector(std::vector<double>{4.0, 0.0}));
  ps.FinalizeAverage();
  EXPECT_DOUBLE_EQ(ps.model()[0], 3.0);
  EXPECT_DOUBLE_EQ(ps.model()[1], 2.0);
  // Second finalize with nothing staged is a no-op.
  ps.FinalizeAverage();
  EXPECT_DOUBLE_EQ(ps.model()[0], 3.0);
}

// ----------------------------------------------------- consistency model

TEST(ConsistencyTest, AspNeverWaitsOnOthers) {
  std::vector<std::vector<SimTime>> finish = {{1.0, 2.0}, {10.0, 20.0}};
  EXPECT_DOUBLE_EQ(
      ConsistencyStartTime(ConsistencyKind::kAsp, 0, 0, 2, finish), 2.0);
}

TEST(ConsistencyTest, BspWaitsForSlowestPreviousRound) {
  std::vector<std::vector<SimTime>> finish = {{1.0}, {5.0}};
  // Worker 0 starting round 1 must wait for worker 1's round 0.
  EXPECT_DOUBLE_EQ(
      ConsistencyStartTime(ConsistencyKind::kBsp, 0, 0, 1, finish), 5.0);
}

TEST(ConsistencyTest, FirstRoundStartsImmediately) {
  std::vector<std::vector<SimTime>> finish = {{}, {}};
  EXPECT_DOUBLE_EQ(
      ConsistencyStartTime(ConsistencyKind::kBsp, 0, 0, 0, finish), 0.0);
  EXPECT_DOUBLE_EQ(
      ConsistencyStartTime(ConsistencyKind::kSsp, 2, 1, 0, finish), 0.0);
}

TEST(ConsistencyTest, SspAllowsBoundedLead) {
  // Worker 0 finished rounds at t=1,2,3; worker 1 only round 0 at t=10.
  std::vector<std::vector<SimTime>> finish = {{1.0, 2.0, 3.0}, {10.0}};
  // With staleness 2, worker 0 starting round 3 waits for everyone's
  // round 0 only: max(own 3.0, other 10.0) = 10.
  EXPECT_DOUBLE_EQ(
      ConsistencyStartTime(ConsistencyKind::kSsp, 2, 0, 3, finish), 10.0);
  // Starting round 2 needs everyone's round -1: no constraint.
  EXPECT_DOUBLE_EQ(
      ConsistencyStartTime(ConsistencyKind::kSsp, 2, 0, 2, finish), 2.0);
}

TEST(ConsistencyTest, SspZeroStalenessEqualsBsp) {
  std::vector<std::vector<SimTime>> finish = {{1.0, 4.0}, {3.0, 6.0}};
  for (int round = 0; round < 3; ++round) {
    EXPECT_DOUBLE_EQ(
        ConsistencyStartTime(ConsistencyKind::kSsp, 0, 0, round, finish),
        ConsistencyStartTime(ConsistencyKind::kBsp, 0, 0, round, finish));
  }
}

}  // namespace
}  // namespace mllibstar
