#include "engine/spark_cluster.h"

#include <gtest/gtest.h>

#include "sim/network.h"

namespace mllibstar {
namespace {

ClusterConfig TestConfig(size_t workers) {
  ClusterConfig config = ClusterConfig::Cluster1(workers);
  config.straggler_sigma = 0.0;  // deterministic timing for assertions
  return config;
}

TEST(SparkClusterTest, RunOnWorkersChargesReturnedWork) {
  SparkCluster spark(TestConfig(3));
  const double speed = spark.sim().config().compute_speed;
  spark.RunOnWorkers("w", [&](size_t r) -> uint64_t {
    return static_cast<uint64_t>(speed) * (r + 1);
  });
  EXPECT_NEAR(spark.sim().worker(0).clock, 1.0, 1e-9);
  EXPECT_NEAR(spark.sim().worker(1).clock, 2.0, 1e-9);
  EXPECT_NEAR(spark.sim().worker(2).clock, 3.0, 1e-9);
}

TEST(SparkClusterTest, RunOnWorkersExecutesHostSide) {
  SparkCluster spark(TestConfig(4));
  std::vector<bool> ran(4, false);
  spark.RunOnWorkers("mark", [&](size_t r) -> uint64_t {
    ran[r] = true;
    return 0;
  });
  for (bool r : ran) EXPECT_TRUE(r);
}

TEST(SparkClusterTest, BroadcastSequentialSerializesAtDriver) {
  SparkCluster spark(TestConfig(4));
  const NetworkModel& net = spark.network();
  const uint64_t bytes = 100000;
  spark.Broadcast(bytes, BroadcastMode::kDriverSequential, "bcast");
  // Driver outbound pushed 4 copies.
  EXPECT_NEAR(spark.sim().driver().clock,
              net.SerializedTransferTime(bytes, 4), 1e-9);
  // The last worker receives after all 4 payloads.
  EXPECT_NEAR(spark.sim().worker(3).clock,
              net.latency() + 4.0 * bytes / net.bandwidth(), 1e-9);
  // The first worker receives earlier than the last: the bottleneck
  // grows linearly with k.
  EXPECT_LT(spark.sim().worker(0).clock, spark.sim().worker(3).clock);
}

TEST(SparkClusterTest, TorrentBroadcastBeatsSequentialForManyWorkers) {
  const uint64_t bytes = 1000000;
  SparkCluster seq(TestConfig(16));
  seq.Broadcast(bytes, BroadcastMode::kDriverSequential, "b");
  SparkCluster tor(TestConfig(16));
  tor.Broadcast(bytes, BroadcastMode::kTorrent, "b");
  EXPECT_LT(tor.Barrier(), seq.Barrier());
}

TEST(SparkClusterTest, TreeAggregateEndsAtDriver) {
  SparkCluster spark(TestConfig(8));
  spark.TreeAggregate(1000, 2, 100, "agg");
  EXPECT_GT(spark.sim().driver().clock, 0.0);
  // Non-aggregator workers only paid their send.
  EXPECT_GT(spark.sim().worker(0).clock, 0.0);  // aggregator worked more
  EXPECT_GT(spark.sim().worker(0).clock, spark.sim().worker(7).clock);
}

TEST(SparkClusterTest, MoreAggregatorsReduceDriverWaitForLargeK) {
  const uint64_t bytes = 1000000;
  SparkCluster one(TestConfig(16));
  one.TreeAggregate(bytes, 1, 0, "agg");
  SparkCluster four(TestConfig(16));
  four.TreeAggregate(bytes, 4, 0, "agg");
  // With one aggregator, 15 payloads serialize into one executor then
  // one more hop; with four, groups run in parallel.
  EXPECT_LT(four.Barrier(), one.Barrier());
}

TEST(SparkClusterTest, ShuffleAdvancesAllWorkersEqually) {
  SparkCluster spark(TestConfig(4));
  spark.ShuffleAllToAll(1000, "sh");
  const SimTime t0 = spark.sim().worker(0).clock;
  EXPECT_GT(t0, 0.0);
  for (size_t r = 1; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(spark.sim().worker(r).clock, t0);
  }
  // Driver is not involved.
  EXPECT_DOUBLE_EQ(spark.sim().driver().clock, 0.0);
}

TEST(SparkClusterTest, ShuffleWithOneWorkerIsFree) {
  SparkCluster spark(TestConfig(1));
  spark.ShuffleAllToAll(1000, "sh");
  EXPECT_DOUBLE_EQ(spark.sim().worker(0).clock, 0.0);
  EXPECT_EQ(spark.total_bytes(), 0u);
}

TEST(SparkClusterTest, ByteAccountingMatchesPaper) {
  // Paper claim (§IV-B2): with k executors and model size m, both the
  // driver-centric pattern and the two-phase shuffle move 2km bytes
  // per communication step.
  const size_t k = 8;
  const size_t m = 54686;  // kdd12-shaped model, in doubles
  const uint64_t model_bytes = NetworkModel::DenseBytes(m);

  // Driver-centric: broadcast + treeAggregate.
  SparkCluster driver_centric(TestConfig(k));
  driver_centric.Broadcast(model_bytes, BroadcastMode::kDriverSequential,
                           "b");
  driver_centric.TreeAggregate(model_bytes, 2, 0, "agg");
  const uint64_t driver_bytes = driver_centric.total_bytes();

  // MLlib*: two all-to-all shuffles of m/k-sized pieces.
  SparkCluster allreduce(TestConfig(k));
  const uint64_t piece = NetworkModel::DenseBytes((m + k - 1) / k);
  allreduce.ShuffleAllToAll(piece, "rs");
  allreduce.ShuffleAllToAll(piece, "ag");
  const uint64_t allreduce_bytes = allreduce.total_bytes();

  EXPECT_EQ(driver_bytes, 2 * k * model_bytes);
  // Shuffle moves (k-1)/k of the model per phase per worker; within
  // rounding, also ~2km.
  EXPECT_NEAR(static_cast<double>(allreduce_bytes),
              2.0 * (k - 1) * model_bytes, model_bytes);
  // ...but MLlib* finishes the step much faster (driver link removed).
  EXPECT_LT(allreduce.Barrier(), driver_centric.Barrier());
}

TEST(SparkClusterTest, TaskFailuresExtendTheStage) {
  ClusterConfig failing = TestConfig(2);
  failing.task_failure_prob = 0.3;
  failing.task_restart_seconds = 0.5;
  SparkCluster with(failing);
  SparkCluster without(TestConfig(2));
  int host_executions_with = 0;
  const auto task = [&](size_t) -> uint64_t { return 100000; };
  for (int step = 0; step < 20; ++step) {
    with.RunOnWorkers("w", [&](size_t r) -> uint64_t {
      ++host_executions_with;
      return task(r);
    });
    without.RunOnWorkers("w", task);
    with.Barrier();
    without.Barrier();
  }
  // Host-side the function body ran exactly once per task (the retry
  // only recomputes virtual time)...
  EXPECT_EQ(host_executions_with, 40);
  // ...but the failing cluster spent strictly more virtual time.
  EXPECT_GT(with.Now(), without.Now());
  bool saw_retry = false;
  for (const TraceEvent& e : with.trace().events()) {
    if (e.detail.find("task-retry") != std::string::npos) saw_retry = true;
  }
  EXPECT_TRUE(saw_retry);
}

TEST(SparkClusterTest, StagesAreMarked) {
  SparkCluster spark(TestConfig(2));
  spark.BeginStage("s0");
  spark.RunOnWorkers("w", [](size_t) -> uint64_t { return 1000; });
  spark.BeginStage("s1");
  ASSERT_EQ(spark.trace().stages().size(), 2u);
  EXPECT_LT(spark.trace().stages()[0].first,
            spark.trace().stages()[1].first);
}

}  // namespace
}  // namespace mllibstar
