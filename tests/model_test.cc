#include "core/model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mllibstar {
namespace {

DataPoint MakePoint(double label,
                    std::initializer_list<std::pair<FeatureIndex, double>>
                        entries) {
  DataPoint p;
  p.label = label;
  for (const auto& [index, value] : entries) p.features.Push(index, value);
  return p;
}

TEST(GlmModelTest, MarginIsDotProduct) {
  GlmModel model(4);
  (*model.mutable_weights())[1] = 2.0;
  (*model.mutable_weights())[3] = -1.0;
  const DataPoint p = MakePoint(1.0, {{1, 3.0}, {3, 4.0}});
  EXPECT_DOUBLE_EQ(model.Margin(p), 2.0);
  EXPECT_DOUBLE_EQ(model.Margin(p.features), 2.0);
}

TEST(GlmModelTest, PredictLabelTieMapsToPositive) {
  // The documented tie rule: margin exactly 0 predicts +1. A zero
  // model and a disjoint-support point both produce a 0 margin.
  GlmModel zero_model(4);
  const DataPoint p = MakePoint(-1.0, {{0, 1.0}, {2, -3.0}});
  EXPECT_DOUBLE_EQ(zero_model.Margin(p), 0.0);
  EXPECT_DOUBLE_EQ(zero_model.PredictLabel(p), 1.0);

  GlmModel model(4);
  (*model.mutable_weights())[3] = 5.0;
  EXPECT_DOUBLE_EQ(model.PredictLabel(p), 1.0);  // no shared features
}

TEST(GlmModelTest, PredictLabelConsistentWithProbabilityThreshold) {
  GlmModel model(2);
  (*model.mutable_weights())[0] = 1.0;
  for (double v : {-2.0, -0.5, 0.0, 0.5, 2.0}) {
    const DataPoint p = MakePoint(1.0, {{0, v}});
    const bool positive = model.PredictLabel(p) > 0.0;
    EXPECT_EQ(positive, model.PredictProbability(p) >= 0.5) << "v=" << v;
  }
}

TEST(GlmModelTest, PredictProbabilityIsHalfAtZeroMargin) {
  GlmModel model(2);
  const DataPoint p = MakePoint(1.0, {{0, 1.0}});
  EXPECT_DOUBLE_EQ(model.PredictProbability(p), 0.5);
}

TEST(GlmModelTest, PredictProbabilityLargeMarginsSaturateWithoutOverflow) {
  GlmModel model(1);
  (*model.mutable_weights())[0] = 1.0;
  for (double margin : {100.0, 1000.0, 1e6, 1e308}) {
    const DataPoint pos = MakePoint(1.0, {{0, margin}});
    const DataPoint neg = MakePoint(1.0, {{0, -margin}});
    const double p_pos = model.PredictProbability(pos);
    const double p_neg = model.PredictProbability(neg);
    EXPECT_TRUE(std::isfinite(p_pos)) << margin;
    EXPECT_TRUE(std::isfinite(p_neg)) << margin;
    // Saturates toward the endpoints (within 1e-40 at margin 100,
    // exactly at the endpoints once exp() underflows) but never
    // overflows past [0, 1] or produces NaN.
    EXPECT_NEAR(p_pos, 1.0, 1e-40) << margin;
    EXPECT_NEAR(p_neg, 0.0, 1e-40) << margin;
    EXPECT_LE(p_pos, 1.0) << margin;
    EXPECT_GE(p_neg, 0.0) << margin;
  }
}

TEST(GlmModelTest, PredictProbabilityIsMonotoneInMargin) {
  GlmModel model(1);
  (*model.mutable_weights())[0] = 1.0;
  double previous = 0.0;
  for (double m : {-10.0, -1.0, -0.1, 0.0, 0.1, 1.0, 10.0}) {
    const double p = model.PredictProbability(MakePoint(1.0, {{0, m}}));
    EXPECT_GT(p, previous) << "m=" << m;
    previous = p;
  }
}

// The logistic loss gradient factors as dl/dm(m, y)·x with
// dl/dm(m, +1) = σ(m) − 1 and dl/dm(m, −1) = σ(m). PredictProbability
// must agree with the trained loss, or served probabilities would be
// calibrated against a different model than the one optimized.
TEST(GlmModelTest, PredictProbabilityAgreesWithLogisticLossGradient) {
  const auto loss = MakeLoss(LossKind::kLogistic);
  GlmModel model(1);
  (*model.mutable_weights())[0] = 1.0;
  for (double m : {-50.0, -4.0, -1.0, -1e-9, 0.0, 1e-9, 1.0, 4.0, 50.0}) {
    const double p = model.PredictProbability(MakePoint(1.0, {{0, m}}));
    EXPECT_NEAR(loss->Derivative(m, 1.0), p - 1.0, 1e-12) << "m=" << m;
    EXPECT_NEAR(loss->Derivative(m, -1.0), p, 1e-12) << "m=" << m;
  }
}

TEST(SigmoidTest, SymmetryAndEndpoints) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  for (double x : {0.1, 1.0, 10.0, 100.0}) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0, 1e-15) << x;
  }
  EXPECT_DOUBLE_EQ(Sigmoid(1e308), 1.0);
  EXPECT_DOUBLE_EQ(Sigmoid(-1e308), 0.0);
}

}  // namespace
}  // namespace mllibstar
