#include "data/dataset.h"

#include <gtest/gtest.h>

namespace mllibstar {
namespace {

DataPoint MakePoint(double label, std::vector<FeatureIndex> indices) {
  DataPoint p;
  p.label = label;
  for (FeatureIndex i : indices) p.features.Push(i, 1.0);
  return p;
}

TEST(DatasetTest, AddAndAccess) {
  Dataset ds(10, "toy");
  ds.Add(MakePoint(1.0, {0, 3}));
  ds.Add(MakePoint(-1.0, {9}));
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.num_features(), 10u);
  EXPECT_EQ(ds.name(), "toy");
  EXPECT_DOUBLE_EQ(ds.point(0).label, 1.0);
  EXPECT_EQ(ds.point(1).features.indices[0], 9u);
}

TEST(DatasetTest, TotalNnz) {
  Dataset ds(10);
  ds.Add(MakePoint(1.0, {0, 1, 2}));
  ds.Add(MakePoint(-1.0, {5}));
  EXPECT_EQ(ds.TotalNnz(), 4u);
}

TEST(DatasetTest, SliceCopiesRange) {
  Dataset ds(10, "toy");
  for (int i = 0; i < 5; ++i) {
    ds.Add(MakePoint(i % 2 == 0 ? 1.0 : -1.0,
                     {static_cast<FeatureIndex>(i)}));
  }
  const Dataset slice = ds.Slice(1, 3);
  EXPECT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice.num_features(), 10u);
  EXPECT_EQ(slice.point(0).features.indices[0], 1u);
  EXPECT_EQ(slice.point(1).features.indices[0], 2u);
}

TEST(DatasetTest, ShufflePreservesMultiset) {
  Dataset ds(100);
  for (int i = 0; i < 50; ++i) {
    ds.Add(MakePoint(1.0, {static_cast<FeatureIndex>(i)}));
  }
  Rng rng(3);
  ds.Shuffle(&rng);
  EXPECT_EQ(ds.size(), 50u);
  std::vector<bool> seen(50, false);
  for (const DataPoint& p : ds.points()) {
    seen[p.features.indices[0]] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(DatasetTest, StatsUnderdeterminedFlag) {
  Dataset wide(1000, "wide");
  wide.Add(MakePoint(1.0, {0}));
  EXPECT_TRUE(wide.Stats().underdetermined);

  Dataset tall(2, "tall");
  tall.Add(MakePoint(1.0, {0}));
  tall.Add(MakePoint(-1.0, {1}));
  tall.Add(MakePoint(1.0, {0}));
  EXPECT_FALSE(tall.Stats().underdetermined);
}

TEST(DatasetTest, StatsCountsMatch) {
  Dataset ds(10, "s");
  ds.Add(MakePoint(1.0, {0, 1}));
  ds.Add(MakePoint(-1.0, {2, 3, 4}));
  const DatasetStats stats = ds.Stats();
  EXPECT_EQ(stats.num_instances, 2u);
  EXPECT_EQ(stats.num_features, 10u);
  EXPECT_EQ(stats.total_nnz, 5u);
  EXPECT_DOUBLE_EQ(stats.avg_nnz_per_row, 2.5);
  EXPECT_GT(stats.approx_bytes, 0u);
}

TEST(DatasetTest, EmptyStats) {
  Dataset ds(5, "empty");
  const DatasetStats stats = ds.Stats();
  EXPECT_EQ(stats.num_instances, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_nnz_per_row, 0.0);
}

}  // namespace
}  // namespace mllibstar
