#include "core/convergence.h"

#include <gtest/gtest.h>

namespace mllibstar {
namespace {

ConvergenceCurve MakeCurve(std::string label,
                           std::vector<std::tuple<int, double, double>> pts) {
  ConvergenceCurve curve(std::move(label));
  for (const auto& [step, time, obj] : pts) curve.Add(step, time, obj);
  return curve;
}

TEST(ConvergenceCurveTest, EmptyCurve) {
  ConvergenceCurve curve("x");
  EXPECT_TRUE(curve.empty());
  EXPECT_EQ(curve.FinalObjective(), 0.0);
  EXPECT_FALSE(curve.TimeToReach(0.5).has_value());
  EXPECT_FALSE(curve.StepsToReach(0.5).has_value());
}

TEST(ConvergenceCurveTest, RecordsAndFinal) {
  const auto curve = MakeCurve("a", {{0, 0.0, 1.0}, {1, 2.0, 0.5},
                                     {2, 4.0, 0.25}});
  EXPECT_EQ(curve.points().size(), 3u);
  EXPECT_DOUBLE_EQ(curve.FinalObjective(), 0.25);
  EXPECT_DOUBLE_EQ(curve.BestObjective(), 0.25);
  EXPECT_EQ(curve.label(), "a");
}

TEST(ConvergenceCurveTest, BestObjectiveNotNecessarilyFinal) {
  const auto curve = MakeCurve("a", {{0, 0.0, 1.0}, {1, 1.0, 0.2},
                                     {2, 2.0, 0.4}});
  EXPECT_DOUBLE_EQ(curve.BestObjective(), 0.2);
  EXPECT_DOUBLE_EQ(curve.FinalObjective(), 0.4);
}

TEST(ConvergenceCurveTest, TimeAndStepsToReach) {
  const auto curve = MakeCurve("a", {{0, 0.0, 1.0}, {5, 2.5, 0.6},
                                     {10, 5.0, 0.3}});
  EXPECT_DOUBLE_EQ(curve.TimeToReach(0.6).value(), 2.5);
  EXPECT_EQ(curve.StepsToReach(0.6).value(), 5);
  EXPECT_DOUBLE_EQ(curve.TimeToReach(0.31).value(), 5.0);
  EXPECT_FALSE(curve.TimeToReach(0.1).has_value());
}

TEST(SpeedupTest, RatioOfTimes) {
  const auto slow = MakeCurve("slow", {{0, 0.0, 1.0}, {100, 100.0, 0.1}});
  const auto fast = MakeCurve("fast", {{0, 0.0, 1.0}, {4, 2.0, 0.1}});
  EXPECT_DOUBLE_EQ(SpeedupAtTarget(slow, fast, 0.1).value(), 50.0);
  EXPECT_DOUBLE_EQ(StepSpeedupAtTarget(slow, fast, 0.1).value(), 25.0);
}

TEST(SpeedupTest, UnreachedTargetYieldsNullopt) {
  const auto slow = MakeCurve("slow", {{0, 0.0, 1.0}, {10, 10.0, 0.5}});
  const auto fast = MakeCurve("fast", {{0, 0.0, 1.0}, {4, 2.0, 0.1}});
  EXPECT_FALSE(SpeedupAtTarget(slow, fast, 0.1).has_value());
  EXPECT_FALSE(SpeedupAtTarget(fast, slow, 0.1).has_value());
}

TEST(SpeedupTest, ZeroTimeImprovedYieldsNullopt) {
  const auto base = MakeCurve("b", {{1, 1.0, 0.1}});
  const auto instant = MakeCurve("i", {{0, 0.0, 0.1}});
  EXPECT_FALSE(SpeedupAtTarget(base, instant, 0.1).has_value());
}

}  // namespace
}  // namespace mllibstar
