#include "common/flags.h"

#include <gtest/gtest.h>

namespace mllibstar {
namespace {

FlagParser MakeParser() {
  FlagParser parser("test tool");
  parser.AddString("name", "default", "a string");
  parser.AddInt64("count", 7, "an int");
  parser.AddDouble("rate", 0.5, "a double");
  parser.AddBool("verbose", false, "a bool");
  return parser;
}

Status ParseArgs(FlagParser* parser, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return parser->Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, DefaultsWhenUnset) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {}).ok());
  EXPECT_EQ(parser.GetString("name"), "default");
  EXPECT_EQ(parser.GetInt64("count"), 7);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate"), 0.5);
  EXPECT_FALSE(parser.GetBool("verbose"));
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"--name=abc", "--count=42",
                                  "--rate=1.25", "--verbose=true"})
                  .ok());
  EXPECT_EQ(parser.GetString("name"), "abc");
  EXPECT_EQ(parser.GetInt64("count"), 42);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate"), 1.25);
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"--name", "xyz", "--count", "-3"}).ok());
  EXPECT_EQ(parser.GetString("name"), "xyz");
  EXPECT_EQ(parser.GetInt64("count"), -3);
}

TEST(FlagsTest, BareBoolSetsTrue) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"--verbose"}).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagsTest, PositionalArgsCollected) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"input.txt", "--count=1", "out.txt"}).ok());
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.txt");
  EXPECT_EQ(parser.positional()[1], "out.txt");
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagParser parser = MakeParser();
  const Status status = ParseArgs(&parser, {"--bogus=1"});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadIntRejected) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(ParseArgs(&parser, {"--count=abc"}).ok());
}

TEST(FlagsTest, BadBoolRejected) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(ParseArgs(&parser, {"--verbose=maybe"}).ok());
}

TEST(FlagsTest, MissingValueRejected) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(ParseArgs(&parser, {"--name"}).ok());
}

TEST(FlagsTest, HelpShortCircuits) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"--help", "--bogus=1"}).ok());
  EXPECT_TRUE(parser.help_requested());
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  FlagParser parser = MakeParser();
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("default: 7"), std::string::npos);
  EXPECT_NE(usage.find("a double"), std::string::npos);
}

TEST(FlagsTest, DoubleDefaultsRoundTripPrecisely) {
  FlagParser parser("p");
  parser.AddDouble("x", 1.0 / 3.0, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_DOUBLE_EQ(parser.GetDouble("x"), 1.0 / 3.0);
}

}  // namespace
}  // namespace mllibstar
