// Edge-case and configuration-surface tests for the trainers, beyond
// the core behaviors covered in trainer_test.cc.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "train/trainer.h"

namespace mllibstar {
namespace {

Dataset SmallData(uint64_t seed = 88) {
  SyntheticSpec spec;
  spec.name = "edge";
  spec.num_instances = 500;
  spec.num_features = 120;
  spec.avg_nnz = 8;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

ClusterConfig SmallCluster(size_t workers = 4) {
  ClusterConfig config = ClusterConfig::Cluster1(workers);
  config.straggler_sigma = 0.0;
  return config;
}

TrainerConfig BaseConfig() {
  TrainerConfig config;
  config.loss = LossKind::kLogistic;
  config.base_lr = 0.3;
  config.lr_schedule = LrScheduleKind::kConstant;
  config.max_comm_steps = 8;
  return config;
}

TEST(TrainerEdgeTest, L1RegularizationSparsifiesTheModel) {
  const Dataset data = SmallData();
  TrainerConfig plain = BaseConfig();
  TrainerConfig l1 = BaseConfig();
  l1.regularizer = RegularizerKind::kL1;
  l1.lambda = 0.02;
  const TrainResult without =
      MakeTrainer(SystemKind::kMllibStar, plain)->Train(data, SmallCluster());
  const TrainResult with =
      MakeTrainer(SystemKind::kMllibStar, l1)->Train(data, SmallCluster());
  EXPECT_FALSE(with.diverged);
  EXPECT_LT(with.final_weights.CountNonZeros(1e-9),
            without.final_weights.CountNonZeros(1e-9));
}

TEST(TrainerEdgeTest, SquaredLossRegressionRuns) {
  Dataset data(3, "sq");
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    DataPoint p;
    const FeatureIndex j = static_cast<FeatureIndex>(i % 3);
    p.features.Push(j, 1.0);
    p.label = (j == 0 ? 1.0 : j == 1 ? -2.0 : 0.5) + 0.01 * rng.NextGaussian();
    data.Add(p);
  }
  TrainerConfig config = BaseConfig();
  config.loss = LossKind::kSquared;
  config.base_lr = 0.2;
  config.max_comm_steps = 15;
  const TrainResult result =
      MakeTrainer(SystemKind::kMllibStar, config)->Train(data, SmallCluster());
  EXPECT_FALSE(result.diverged);
  EXPECT_NEAR(result.final_weights[0], 1.0, 0.1);
  EXPECT_NEAR(result.final_weights[1], -2.0, 0.1);
  EXPECT_NEAR(result.final_weights[2], 0.5, 0.1);
}

TEST(TrainerEdgeTest, TorrentBroadcastSpeedsUpMllibAtScale) {
  const Dataset data = SmallData();
  TrainerConfig seq = BaseConfig();
  seq.max_comm_steps = 4;
  TrainerConfig torrent = seq;
  torrent.broadcast = BroadcastMode::kTorrent;
  const TrainResult a =
      MakeTrainer(SystemKind::kMllib, seq)->Train(data, SmallCluster(16));
  const TrainResult b = MakeTrainer(SystemKind::kMllib, torrent)
                            ->Train(data, SmallCluster(16));
  EXPECT_LT(b.sim_seconds, a.sim_seconds);
  // Identical math either way.
  EXPECT_DOUBLE_EQ(a.curve.FinalObjective(), b.curve.FinalObjective());
}

TEST(TrainerEdgeTest, LocalEpochsMultiplyUpdates) {
  const Dataset data = SmallData();
  TrainerConfig one = BaseConfig();
  one.max_comm_steps = 3;
  TrainerConfig three = one;
  three.local_epochs = 3;
  const TrainResult a =
      MakeTrainer(SystemKind::kMllibStar, one)->Train(data, SmallCluster());
  const TrainResult b =
      MakeTrainer(SystemKind::kMllibStar, three)->Train(data, SmallCluster());
  EXPECT_EQ(b.total_model_updates, 3 * a.total_model_updates);
  EXPECT_GT(b.sim_seconds, a.sim_seconds);
}

TEST(TrainerEdgeTest, MaxSimSecondsStopsTheRun) {
  const Dataset data = SmallData();
  TrainerConfig config = BaseConfig();
  config.max_comm_steps = 1000;
  config.max_sim_seconds = 1.0;
  const TrainResult result =
      MakeTrainer(SystemKind::kMllibStar, config)->Train(data, SmallCluster());
  EXPECT_LT(result.comm_steps, 1000);
}

TEST(TrainerEdgeTest, EvalEveryThinsTheCurve) {
  const Dataset data = SmallData();
  TrainerConfig every = BaseConfig();
  every.max_comm_steps = 12;
  TrainerConfig sparse_eval = every;
  sparse_eval.eval_every = 4;
  const TrainResult a =
      MakeTrainer(SystemKind::kMllibStar, every)->Train(data, SmallCluster());
  const TrainResult b = MakeTrainer(SystemKind::kMllibStar, sparse_eval)
                            ->Train(data, SmallCluster());
  EXPECT_EQ(a.curve.points().size(), 13u);  // initial + 12
  EXPECT_EQ(b.curve.points().size(), 4u);   // initial + steps 4, 8, 12
}

TEST(TrainerEdgeTest, NumAggregatorsOverrideChangesTiming) {
  const Dataset data = SmallData();
  TrainerConfig one = BaseConfig();
  one.max_comm_steps = 3;
  one.num_aggregators = 1;
  TrainerConfig four = one;
  four.num_aggregators = 4;
  const TrainResult a =
      MakeTrainer(SystemKind::kMllib, one)->Train(data, SmallCluster(16));
  const TrainResult b =
      MakeTrainer(SystemKind::kMllib, four)->Train(data, SmallCluster(16));
  EXPECT_NE(a.sim_seconds, b.sim_seconds);
  EXPECT_DOUBLE_EQ(a.curve.FinalObjective(), b.curve.FinalObjective());
}

TEST(TrainerEdgeTest, AspRunsAndConverges) {
  const Dataset data = SmallData();
  TrainerConfig config = BaseConfig();
  config.max_comm_steps = 20;
  config.batch_fraction = 0.2;
  config.ps.consistency = ConsistencyKind::kAsp;
  const TrainResult result = MakeTrainer(SystemKind::kPetuumStar, config)
                                 ->Train(data, SmallCluster());
  EXPECT_FALSE(result.diverged);
  EXPECT_LT(result.curve.BestObjective(),
            result.curve.points().front().objective);
}

TEST(TrainerEdgeTest, AspIsNoSlowerThanBspUnderJitter) {
  const Dataset data = SmallData();
  ClusterConfig jittery = ClusterConfig::Cluster2(4);
  TrainerConfig bsp = BaseConfig();
  bsp.max_comm_steps = 15;
  bsp.batch_fraction = 0.3;
  TrainerConfig asp = bsp;
  asp.ps.consistency = ConsistencyKind::kAsp;
  const TrainResult b =
      MakeTrainer(SystemKind::kPetuumStar, bsp)->Train(data, jittery);
  const TrainResult a =
      MakeTrainer(SystemKind::kPetuumStar, asp)->Train(data, jittery);
  EXPECT_LE(a.sim_seconds, b.sim_seconds + 1e-9);
}

TEST(TrainerEdgeTest, MorePsShardsNeverSlower) {
  const Dataset data = SmallData();
  TrainerConfig two = BaseConfig();
  two.max_comm_steps = 6;
  two.ps.num_shards = 1;
  TrainerConfig four = two;
  four.ps.num_shards = 4;
  const TrainResult a =
      MakeTrainer(SystemKind::kAngel, two)->Train(data, SmallCluster());
  const TrainResult b =
      MakeTrainer(SystemKind::kAngel, four)->Train(data, SmallCluster());
  EXPECT_LE(b.sim_seconds, a.sim_seconds * 1.05);
}

TEST(TrainerEdgeTest, SingleWorkerDegeneratesGracefully) {
  const Dataset data = SmallData();
  TrainerConfig config = BaseConfig();
  for (SystemKind kind : {SystemKind::kMllib, SystemKind::kMllibStar,
                          SystemKind::kPetuumStar}) {
    const TrainResult result =
        MakeTrainer(kind, config)->Train(data, SmallCluster(1));
    EXPECT_FALSE(result.diverged) << SystemName(kind);
    EXPECT_LT(result.curve.BestObjective(),
              result.curve.points().front().objective)
        << SystemName(kind);
  }
}

TEST(TrainerEdgeTest, MoreWorkersThanPoints) {
  Dataset tiny(10, "tiny");
  for (int i = 0; i < 3; ++i) {
    DataPoint p;
    p.label = i % 2 == 0 ? 1.0 : -1.0;
    p.features.Push(static_cast<FeatureIndex>(i), 1.0);
    tiny.Add(p);
  }
  TrainerConfig config = BaseConfig();
  config.max_comm_steps = 2;
  for (SystemKind kind : {SystemKind::kMllib, SystemKind::kMllibStar,
                          SystemKind::kAngel}) {
    const TrainResult result =
        MakeTrainer(kind, config)->Train(tiny, SmallCluster(8));
    EXPECT_FALSE(result.diverged) << SystemName(kind);
  }
}

TEST(TrainerEdgeTest, SeedChangesTrajectoryButNotOutcomeQuality) {
  const Dataset data = SmallData();
  TrainerConfig a = BaseConfig();
  TrainerConfig b = BaseConfig();
  b.seed = 999;
  const TrainResult ra =
      MakeTrainer(SystemKind::kMllibStar, a)->Train(data, SmallCluster());
  const TrainResult rb =
      MakeTrainer(SystemKind::kMllibStar, b)->Train(data, SmallCluster());
  EXPECT_NE(ra.curve.FinalObjective(), rb.curve.FinalObjective());
  EXPECT_NEAR(ra.curve.FinalObjective(), rb.curve.FinalObjective(), 0.05);
}

TEST(TrainerEdgeTest, SparsePullCutsPsTrafficWithoutChangingResult) {
  const Dataset data = SmallData();
  TrainerConfig dense = BaseConfig();
  dense.max_comm_steps = 5;
  TrainerConfig sparse = dense;
  sparse.ps.sparse_pull = true;
  const TrainResult a =
      MakeTrainer(SystemKind::kAngel, dense)->Train(data, SmallCluster());
  const TrainResult b =
      MakeTrainer(SystemKind::kAngel, sparse)->Train(data, SmallCluster());
  // Same math, fewer bytes, no slower.
  EXPECT_DOUBLE_EQ(a.curve.FinalObjective(), b.curve.FinalObjective());
  EXPECT_LE(b.total_bytes, a.total_bytes);
  EXPECT_LE(b.sim_seconds, a.sim_seconds + 1e-9);
}

TEST(TrainerEdgeTest, FaultyClusterSameResultSlower) {
  const Dataset data = SmallData();
  TrainerConfig config = BaseConfig();
  config.max_comm_steps = 4;
  ClusterConfig faulty = SmallCluster();
  faulty.task_failure_prob = 0.2;
  const TrainResult clean =
      MakeTrainer(SystemKind::kMllibStar, config)->Train(data, SmallCluster());
  const TrainResult failed =
      MakeTrainer(SystemKind::kMllibStar, config)->Train(data, faulty);
  EXPECT_DOUBLE_EQ(clean.curve.FinalObjective(),
                   failed.curve.FinalObjective());
  EXPECT_GT(failed.sim_seconds, clean.sim_seconds);
}

}  // namespace
}  // namespace mllibstar
