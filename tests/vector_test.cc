#include "core/vector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace mllibstar {
namespace {

SparseVector MakeSparse(std::vector<FeatureIndex> indices,
                        std::vector<double> values) {
  SparseVector v;
  v.indices = std::move(indices);
  v.values = std::move(values);
  return v;
}

TEST(SparseVectorTest, PushAndNnz) {
  SparseVector v;
  EXPECT_EQ(v.nnz(), 0u);
  v.Push(1, 0.5);
  v.Push(4, -2.0);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_TRUE(v.IsSorted());
}

TEST(SparseVectorTest, IsSortedDetectsViolations) {
  EXPECT_TRUE(MakeSparse({}, {}).IsSorted());
  EXPECT_TRUE(MakeSparse({3}, {1.0}).IsSorted());
  EXPECT_FALSE(MakeSparse({3, 3}, {1.0, 1.0}).IsSorted());
  EXPECT_FALSE(MakeSparse({5, 2}, {1.0, 1.0}).IsSorted());
}

TEST(SparseVectorTest, SquaredNorm) {
  const SparseVector v = MakeSparse({0, 2}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
}

TEST(DenseVectorTest, ConstructZeroed) {
  DenseVector v(5);
  EXPECT_EQ(v.dim(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(DenseVectorTest, SparseAxpy) {
  DenseVector v(4);
  v.AddScaled(MakeSparse({1, 3}, {2.0, -1.0}), 3.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 6.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  EXPECT_DOUBLE_EQ(v[3], -3.0);
}

TEST(DenseVectorTest, DenseAxpy) {
  DenseVector v(std::vector<double>{1.0, 2.0});
  DenseVector x(std::vector<double>{10.0, 20.0});
  v.AddScaled(x, 0.5);
  EXPECT_DOUBLE_EQ(v[0], 6.0);
  EXPECT_DOUBLE_EQ(v[1], 12.0);
}

TEST(DenseVectorTest, DotWithSparse) {
  DenseVector v(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(v.Dot(MakeSparse({0, 3}, {2.0, -1.0})), -2.0);
  EXPECT_DOUBLE_EQ(v.Dot(MakeSparse({}, {})), 0.0);
}

TEST(DenseVectorTest, DotWithDense) {
  DenseVector a(std::vector<double>{1.0, -1.0, 2.0});
  DenseVector b(std::vector<double>{3.0, 3.0, 0.5});
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
}

TEST(DenseVectorTest, Norms) {
  DenseVector v(std::vector<double>{3.0, -4.0});
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(v.Norm2(), 5.0);
  EXPECT_DOUBLE_EQ(v.Norm1(), 7.0);
}

TEST(DenseVectorTest, ScaleAndZero) {
  DenseVector v(std::vector<double>{1.0, 2.0});
  v.Scale(-2.0);
  EXPECT_DOUBLE_EQ(v[0], -2.0);
  EXPECT_DOUBLE_EQ(v[1], -4.0);
  v.SetZero();
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(DenseVectorTest, CountNonZeros) {
  DenseVector v(std::vector<double>{0.0, 1e-12, 0.5, -0.5});
  EXPECT_EQ(v.CountNonZeros(), 3u);
  EXPECT_EQ(v.CountNonZeros(1e-6), 2u);
}

TEST(DenseVectorTest, AverageOfVectors) {
  std::vector<DenseVector> vs;
  vs.emplace_back(std::vector<double>{1.0, 0.0});
  vs.emplace_back(std::vector<double>{3.0, 2.0});
  const DenseVector avg = Average(vs);
  EXPECT_DOUBLE_EQ(avg[0], 2.0);
  EXPECT_DOUBLE_EQ(avg[1], 1.0);
}

TEST(DenseVectorTest, AverageOfOneIsIdentity) {
  std::vector<DenseVector> vs;
  vs.emplace_back(std::vector<double>{7.0, -3.0});
  const DenseVector avg = Average(vs);
  EXPECT_DOUBLE_EQ(avg[0], 7.0);
  EXPECT_DOUBLE_EQ(avg[1], -3.0);
}

// Property: dot is linear — (a + c·x)·s == a·s + c·(x·s) for sparse s.
TEST(DenseVectorProperty, DotLinearInAxpy) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t dim = 32;
    DenseVector a(dim);
    DenseVector x(dim);
    for (size_t i = 0; i < dim; ++i) {
      a[i] = rng.NextGaussian();
      x[i] = rng.NextGaussian();
    }
    SparseVector s;
    for (size_t i = 0; i < dim; i += 1 + rng.NextUint64(4)) {
      s.Push(static_cast<FeatureIndex>(i), rng.NextGaussian());
    }
    const double c = rng.NextDouble(-2.0, 2.0);
    const double lhs_before = a.Dot(s);
    DenseVector sum = a;
    // Convert sparse s to dense to exercise dense axpy too.
    DenseVector s_dense(dim);
    s_dense.AddScaled(s, 1.0);
    sum.AddScaled(s_dense, c);
    EXPECT_NEAR(sum.Dot(s), lhs_before + c * s_dense.Dot(s), 1e-9);
  }
}

}  // namespace
}  // namespace mllibstar
