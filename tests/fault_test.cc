// Fault injection and crash recovery. Three invariants anchor every
// test here:
//   1. Faults cost virtual time (and, for PS shard rollback, server
//      state) but never perturb the host-side numerics — so a Spark
//      run with crashes, degraded links or speculation finishes with
//      the exact same weights as a fault-free run.
//   2. A fixed seed plus a fixed FaultPlan reproduces byte-identical
//      traces, across repeated runs and across host_threads values.
//   3. Checkpoint/resume is bit-identical: a run interrupted at a
//      snapshot and resumed finishes with EXPECT_EQ weights against
//      the uninterrupted run, for all seven systems.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/synthetic.h"
#include "ps/parameter_server.h"
#include "sim/sim_cluster.h"
#include "train/trainer.h"

namespace mllibstar {
namespace {

Dataset FaultData() {
  SyntheticSpec spec;
  spec.name = "faults";
  spec.num_instances = 400;
  spec.num_features = 80;
  spec.avg_nnz = 10;
  spec.seed = 91;
  return GenerateSynthetic(spec);
}

ClusterConfig BaseCluster(size_t workers = 4) {
  ClusterConfig config = ClusterConfig::Cluster1(workers);
  config.straggler_sigma = 0.08;
  return config;
}

TrainerConfig BaseConfig() {
  TrainerConfig config;
  config.loss = LossKind::kLogistic;
  config.base_lr = 0.3;
  config.lr_schedule = LrScheduleKind::kConstant;
  config.batch_fraction = 0.1;
  config.max_comm_steps = 8;
  config.seed = 17;
  return config;
}

void ExpectSameWeights(const DenseVector& a, const DenseVector& b) {
  ASSERT_EQ(a.dim(), b.dim());
  for (size_t i = 0; i < a.dim(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "coordinate " << i;
  }
}

void ExpectSameTrace(const TraceLog& a, const TraceLog& b) {
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    const TraceEvent& ea = a.events()[i];
    const TraceEvent& eb = b.events()[i];
    EXPECT_EQ(ea.node, eb.node) << "event " << i;
    EXPECT_EQ(ea.start, eb.start) << "event " << i;
    EXPECT_EQ(ea.end, eb.end) << "event " << i;
    EXPECT_EQ(ea.kind, eb.kind) << "event " << i;
    EXPECT_EQ(ea.detail, eb.detail) << "event " << i;
  }
  EXPECT_EQ(a.RenderAscii(160), b.RenderAscii(160));
}

// ---------------------------------------------------------------------
// RNG stream separation (the bugfix this PR carries): task failures,
// retries and recoveries draw from a dedicated failure stream, so the
// primary jitter sequence is pinned regardless of failures.

TEST(FaultRegressionTest, JitterSequenceIdenticalWithFailuresOnOrOff) {
  ClusterConfig with_failures = BaseCluster();
  with_failures.straggler_sigma = 0.1;
  with_failures.task_failure_prob = 0.5;
  ClusterConfig without = with_failures;
  without.task_failure_prob = 0.0;
  SimCluster a(with_failures);
  SimCluster b(without);
  for (int i = 0; i < 64; ++i) {
    (void)a.NextTaskFailure();  // consumes the failure stream only
    (void)b.NextTaskFailure();  // no-op draw-wise when prob == 0
    EXPECT_EQ(a.NextJitter(), b.NextJitter()) << "draw " << i;
  }
}

TEST(FaultRegressionTest, RetryJitterDoesNotMoveThePrimaryStream) {
  ClusterConfig config = BaseCluster();
  config.straggler_sigma = 0.1;
  SimCluster a(config);
  SimCluster b(config);
  for (int i = 0; i < 64; ++i) {
    (void)a.NextRetryJitter();  // failure stream
    EXPECT_EQ(a.NextJitter(), b.NextJitter()) << "draw " << i;
  }
}

// ---------------------------------------------------------------------
// Checkpoint word store.

TEST(CheckpointTest, WordStoreRoundTripsThroughDisk) {
  const std::string path = testing::TempDir() + "/ck_roundtrip.bin";
  std::remove(path.c_str());

  Rng rng(9);
  (void)rng.NextGaussian();  // leave a cached gaussian in the state
  Checkpoint out;
  out.PutU64(42);
  out.PutDouble(-3.25);
  out.PutVector(DenseVector(std::vector<double>{1.5, -2.5, 0.0}));
  out.PutRngState(rng.SaveState());
  ASSERT_TRUE(out.WriteFile(path).ok());
  ASSERT_TRUE(Checkpoint::Exists(path));

  Checkpoint in;
  ASSERT_TRUE(in.ReadFile(path).ok());
  EXPECT_EQ(in.TakeU64(), 42u);
  EXPECT_EQ(in.TakeDouble(), -3.25);
  const DenseVector v = in.TakeVector();
  ASSERT_EQ(v.dim(), 3u);
  EXPECT_EQ(v[0], 1.5);
  EXPECT_EQ(v[1], -2.5);
  EXPECT_EQ(v[2], 0.0);
  Rng restored(1);
  restored.RestoreState(in.TakeRngState());
  EXPECT_TRUE(in.exhausted());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(restored.NextDouble(), rng.NextDouble());
    EXPECT_EQ(restored.NextGaussian(), rng.NextGaussian());
  }
}

TEST(CheckpointTest, CorruptFileIsRejected) {
  const std::string path = testing::TempDir() + "/ck_corrupt.bin";
  Checkpoint out;
  out.PutU64(7);
  out.PutDouble(2.5);
  ASSERT_TRUE(out.WriteFile(path).ok());
  {
    // Flip one payload byte behind the checksum's back.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(3 * sizeof(uint64_t));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x1);
    f.seekp(3 * sizeof(uint64_t));
    f.write(&byte, 1);
  }
  Checkpoint in;
  EXPECT_EQ(in.ReadFile(path).code(), StatusCode::kIoError);
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  const std::string path = testing::TempDir() + "/ck_missing.bin";
  std::remove(path.c_str());
  EXPECT_FALSE(Checkpoint::Exists(path));
  Checkpoint in;
  EXPECT_EQ(in.ReadFile(path).code(), StatusCode::kNotFound);
  CheckpointConfig config;
  config.path = path;
  config.resume = true;
  Checkpoint ck;
  EXPECT_FALSE(TryResume(config, &ck));  // first run, not an error
}

// ---------------------------------------------------------------------
// Checkpoint/resume bit-identity for all seven systems: train 8 steps
// straight vs. train 4 steps (snapshotting at step 4), then resume to
// 8 from the file. Weights must match to the last bit.

class CheckpointResumeTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(CheckpointResumeTest, ResumedRunMatchesUninterruptedBitForBit) {
  const Dataset data = FaultData();
  const ClusterConfig cluster = BaseCluster();
  std::string name = SystemName(GetParam());
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  const std::string path = testing::TempDir() + "/resume_" + name + ".bin";
  std::remove(path.c_str());

  TrainerConfig full = BaseConfig();
  const TrainResult uninterrupted =
      MakeTrainer(GetParam(), full)->Train(data, cluster);

  TrainerConfig first = full;
  first.max_comm_steps = 4;
  first.checkpoint.path = path;
  first.checkpoint.every_steps = 4;
  first.checkpoint.resume = true;  // no file yet: starts fresh
  (void)MakeTrainer(GetParam(), first)->Train(data, cluster);
  ASSERT_TRUE(Checkpoint::Exists(path));

  TrainerConfig second = full;
  second.checkpoint = first.checkpoint;  // resumes from step 4
  const TrainResult resumed =
      MakeTrainer(GetParam(), second)->Train(data, cluster);

  ExpectSameWeights(uninterrupted.final_weights, resumed.final_weights);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, CheckpointResumeTest,
    ::testing::Values(SystemKind::kMllib, SystemKind::kMllibMa,
                      SystemKind::kMllibStar, SystemKind::kPetuum,
                      SystemKind::kPetuumStar, SystemKind::kAngel,
                      SystemKind::kMllibLbfgs),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name = SystemName(info.param);
      for (char& c : name) {
        if (c == '*') {
          c = 'S';
        } else if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

// ---------------------------------------------------------------------
// A DegradeLink window that overlaps the checkpoint boundary: the
// snapshot is taken inside the degraded window, so the resumed run
// must replay the remaining degradation (and its virtual-time tax)
// bit-identically — for all seven systems.

class DegradedResumeTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(DegradedResumeTest, ResumeInsideDegradedWindowIsBitIdentical) {
  const Dataset data = FaultData();
  ClusterConfig cluster = BaseCluster();
  // Every system's step-4 checkpoint lands inside [0.02, 0.4]: the PS
  // 8-step runs finish near 0.22 virtual seconds, the Spark ones near
  // 0.55, so the boundary sits mid-window in both regimes.
  cluster.faults.degraded_links = {{3.0, 0.02, 0.4}};

  std::string name = SystemName(GetParam());
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  const std::string path =
      testing::TempDir() + "/degraded_resume_" + name + ".bin";
  std::remove(path.c_str());

  TrainerConfig full = BaseConfig();
  const TrainResult uninterrupted =
      MakeTrainer(GetParam(), full)->Train(data, cluster);

  TrainerConfig first = full;
  first.max_comm_steps = 4;
  first.checkpoint.path = path;
  first.checkpoint.every_steps = 4;
  first.checkpoint.resume = true;
  (void)MakeTrainer(GetParam(), first)->Train(data, cluster);
  ASSERT_TRUE(Checkpoint::Exists(path));

  TrainerConfig second = full;
  second.checkpoint = first.checkpoint;
  const TrainResult resumed =
      MakeTrainer(GetParam(), second)->Train(data, cluster);

  ExpectSameWeights(uninterrupted.final_weights, resumed.final_weights);
  // The window really taxed the run.
  ClusterConfig clean = BaseCluster();
  const TrainResult unfaulted =
      MakeTrainer(GetParam(), full)->Train(data, clean);
  EXPECT_GT(uninterrupted.sim_seconds, unfaulted.sim_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, DegradedResumeTest,
    ::testing::Values(SystemKind::kMllib, SystemKind::kMllibMa,
                      SystemKind::kMllibStar, SystemKind::kPetuum,
                      SystemKind::kPetuumStar, SystemKind::kAngel,
                      SystemKind::kMllibLbfgs),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name = SystemName(info.param);
      for (char& c : name) {
        if (c == '*') {
          c = 'S';
        } else if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

// ---------------------------------------------------------------------
// Executor crashes: lineage recovery, determinism, numeric neutrality.

TEST(ExecutorCrashTest, ScriptedCrashIsRecoveredAndDeterministic) {
  const Dataset data = FaultData();
  ClusterConfig cluster = BaseCluster();
  cluster.faults.worker_crashes = {{2, 0.0005}};

  TrainerConfig sequential = BaseConfig();
  TrainerConfig parallel = sequential;
  parallel.host_threads = 4;

  const TrainResult a =
      MakeTrainer(SystemKind::kMllibStar, sequential)->Train(data, cluster);
  const TrainResult b =
      MakeTrainer(SystemKind::kMllibStar, parallel)->Train(data, cluster);

  EXPECT_EQ(a.faults.worker_crashes, 1u);
  EXPECT_EQ(a.faults.lineage_recomputes, 1u);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  ExpectSameWeights(a.final_weights, b.final_weights);
  ExpectSameTrace(a.trace, b.trace);

  bool saw_fault_bar = false;
  bool saw_rebuild_bar = false;
  for (const TraceEvent& e : a.trace.events()) {
    saw_fault_bar = saw_fault_bar || e.kind == ActivityKind::kFault;
    saw_rebuild_bar = saw_rebuild_bar || e.kind == ActivityKind::kRecompute;
  }
  EXPECT_TRUE(saw_fault_bar);
  EXPECT_TRUE(saw_rebuild_bar);
}

TEST(ExecutorCrashTest, CrashesCostTimeButNeverWeights) {
  const Dataset data = FaultData();
  const ClusterConfig clean = BaseCluster();
  ClusterConfig crashy = clean;
  crashy.faults.worker_crashes = {{1, 0.0005}, {3, 0.01}};

  const TrainerConfig config = BaseConfig();
  const TrainResult a =
      MakeTrainer(SystemKind::kMllibStar, config)->Train(data, clean);
  const TrainResult b =
      MakeTrainer(SystemKind::kMllibStar, config)->Train(data, crashy);

  EXPECT_GT(b.sim_seconds, a.sim_seconds);
  ExpectSameWeights(a.final_weights, b.final_weights);
}

TEST(ExecutorCrashTest, ProbabilisticCrashTraceIsByteIdenticalAcrossRuns) {
  const Dataset data = FaultData();
  ClusterConfig cluster = BaseCluster();
  cluster.faults.worker_crash_prob = 0.15;

  TrainerConfig sequential = BaseConfig();
  TrainerConfig parallel = sequential;
  parallel.host_threads = 4;

  const TrainResult a =
      MakeTrainer(SystemKind::kMllib, sequential)->Train(data, cluster);
  const TrainResult b =
      MakeTrainer(SystemKind::kMllib, sequential)->Train(data, cluster);
  const TrainResult c =
      MakeTrainer(SystemKind::kMllib, parallel)->Train(data, cluster);

  EXPECT_GT(a.faults.worker_crashes, 0u);
  ExpectSameTrace(a.trace, b.trace);
  ExpectSameTrace(a.trace, c.trace);
  ExpectSameWeights(a.final_weights, c.final_weights);
}

TEST(ExecutorCrashTest, PsWorkerCrashRecoversOnTheSameNode) {
  const Dataset data = FaultData();
  ClusterConfig cluster = BaseCluster();
  cluster.faults.worker_crashes = {{1, 0.001}};

  TrainerConfig sequential = BaseConfig();
  sequential.max_comm_steps = 6;
  TrainerConfig parallel = sequential;
  parallel.host_threads = 4;

  const TrainResult a =
      MakeTrainer(SystemKind::kPetuum, sequential)->Train(data, cluster);
  const TrainResult b =
      MakeTrainer(SystemKind::kPetuum, parallel)->Train(data, cluster);

  EXPECT_EQ(a.faults.worker_crashes, 1u);
  EXPECT_GE(a.faults.lineage_recomputes, 1u);
  ExpectSameWeights(a.final_weights, b.final_weights);
  ExpectSameTrace(a.trace, b.trace);
}

// ---------------------------------------------------------------------
// Speculative execution: backups help the stragglers without touching
// the math.

TEST(SpeculationTest, BackupsLaunchAndNeverSlowTheStageDown) {
  const Dataset data = FaultData();
  ClusterConfig slow_node = BaseCluster();
  slow_node.node_speed_factors = {1.0, 1.0, 1.0, 0.25};
  ClusterConfig speculative = slow_node;
  speculative.speculation = true;
  speculative.speculation_quantile = 0.5;
  speculative.speculation_multiplier = 1.2;

  const TrainerConfig config = BaseConfig();
  const TrainResult base =
      MakeTrainer(SystemKind::kMllibStar, config)->Train(data, slow_node);
  const TrainResult spec =
      MakeTrainer(SystemKind::kMllibStar, config)->Train(data, speculative);

  EXPECT_GT(spec.faults.speculative_launches, 0u);
  EXPECT_LE(spec.faults.speculative_wins, spec.faults.speculative_launches);
  EXPECT_LE(spec.sim_seconds, base.sim_seconds);
  ExpectSameWeights(base.final_weights, spec.final_weights);

  bool saw_speculative_bar = false;
  for (const TraceEvent& e : spec.trace.events()) {
    saw_speculative_bar =
        saw_speculative_bar || e.kind == ActivityKind::kSpeculative;
  }
  EXPECT_TRUE(saw_speculative_bar);
}

TEST(SpeculationTest, DeterministicAcrossHostThreads) {
  const Dataset data = FaultData();
  ClusterConfig cluster = BaseCluster();
  cluster.node_speed_factors = {1.0, 1.0, 1.0, 0.25};
  cluster.speculation = true;
  cluster.speculation_quantile = 0.5;
  cluster.speculation_multiplier = 1.2;

  TrainerConfig sequential = BaseConfig();
  TrainerConfig parallel = sequential;
  parallel.host_threads = 4;

  const TrainResult a =
      MakeTrainer(SystemKind::kMllibStar, sequential)->Train(data, cluster);
  const TrainResult b =
      MakeTrainer(SystemKind::kMllibStar, parallel)->Train(data, cluster);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  ExpectSameTrace(a.trace, b.trace);
}

// ---------------------------------------------------------------------
// Degraded links: a pure virtual-time tax.

TEST(DegradedLinkTest, SlowsTheRunButNotTheNumerics) {
  const Dataset data = FaultData();
  const ClusterConfig clean = BaseCluster();
  ClusterConfig degraded = clean;
  degraded.faults.degraded_links = {{4.0, 0.0, 1e9}};

  const TrainerConfig config = BaseConfig();
  const TrainResult a =
      MakeTrainer(SystemKind::kMllibStar, config)->Train(data, clean);
  const TrainResult b =
      MakeTrainer(SystemKind::kMllibStar, config)->Train(data, degraded);

  EXPECT_GT(b.sim_seconds, a.sim_seconds);
  ExpectSameWeights(a.final_weights, b.final_weights);
}

// ---------------------------------------------------------------------
// PS robustness: retry/backoff, shard crash + restore, stale pushes.

TEST(PsFaultTest, DroppedRequestsRetryWithBoundedBackoff) {
  const Dataset data = FaultData();
  ClusterConfig cluster = BaseCluster(2);
  cluster.faults.message_drops = {{1.0, 0.0, 0.05}};

  TrainerConfig config = BaseConfig();
  config.max_comm_steps = 3;
  config.ps.request_timeout_sec = 0.25;
  config.ps.backoff_base_sec = 0.05;
  config.ps.backoff_max_sec = 2.0;
  config.ps.max_request_retries = 4;

  const TrainResult result =
      MakeTrainer(SystemKind::kPetuum, config)->Train(data, cluster);

  EXPECT_GT(result.faults.messages_dropped, 0u);
  EXPECT_GT(result.faults.ps_retries, 0u);
  size_t retry_bars = 0;
  for (const TraceEvent& e : result.trace.events()) {
    if (e.kind != ActivityKind::kRetry) continue;
    ++retry_bars;
    const double wait = e.end - e.start;
    // Each retry waits timeout + jittered backoff, where the backoff
    // is min(max, base * 2^attempt) * [0.5, 1.0).
    EXPECT_GE(wait, config.ps.request_timeout_sec +
                        0.5 * config.ps.backoff_base_sec - 1e-12);
    EXPECT_LE(wait, config.ps.request_timeout_sec +
                        config.ps.backoff_max_sec + 1e-12);
  }
  EXPECT_EQ(retry_bars, result.faults.ps_retries);
}

TEST(PsFaultTest, ShardCrashWithContinuousCheckpointIsLossless) {
  ClusterConfig cc = ClusterConfig::Cluster1(2);
  cc.num_servers = 2;
  cc.faults.server_crashes = {{0, 0.001}};
  SimCluster sim(cc);
  PsConfig ps;
  ps.num_shards = 2;  // server_checkpoint_every_sec = 0: lossless
  PsContext ctx(&sim, 8, ps);

  DenseVector delta(8);
  for (size_t i = 0; i < 8; ++i) delta[i] = static_cast<double>(i + 1);
  ctx.ApplyDelta(delta);
  const DenseVector before = ctx.model();

  sim.worker(0).clock = 0.01;  // past the scripted crash instant
  ctx.TimePull(&sim.worker(0));

  EXPECT_EQ(sim.faults().stats().server_crashes, 1u);
  ExpectSameWeights(before, ctx.model());
  bool saw_down = false;
  bool saw_restore = false;
  for (const TraceEvent& e : sim.trace().events()) {
    saw_down = saw_down || e.detail == "ps-shard-down";
    saw_restore = saw_restore || e.detail == "ps-restore";
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_restore);
}

TEST(PsFaultTest, ShardCrashWithStaleCheckpointLosesItsRange) {
  ClusterConfig cc = ClusterConfig::Cluster1(2);
  cc.num_servers = 2;
  cc.faults.server_crashes = {{0, 0.001}};
  SimCluster sim(cc);
  PsConfig ps;
  ps.num_shards = 2;
  ps.server_checkpoint_every_sec = 1e9;  // snapshot effectively never
  PsContext ctx(&sim, 8, ps);

  DenseVector delta(8);
  for (size_t i = 0; i < 8; ++i) delta[i] = static_cast<double>(i + 1);
  ctx.ApplyDelta(delta);

  sim.worker(0).clock = 0.01;
  ctx.TimePull(&sim.worker(0));

  // Shard 0 owns [0, 4): rolled back to the (zero) snapshot. Shard 1's
  // range survives untouched.
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(ctx.model()[i], 0.0) << i;
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(ctx.model()[i], delta[i]) << i;
  }
}

TEST(PsFaultTest, AspDiscardsPushesBeyondTheStalenessBound) {
  const Dataset data = FaultData();
  ClusterConfig cluster = BaseCluster(3);
  cluster.node_speed_factors = {1.0, 1.0, 0.1};

  TrainerConfig keep = BaseConfig();
  keep.base_lr = 0.1;
  keep.max_comm_steps = 12;
  keep.ps.consistency = ConsistencyKind::kAsp;
  TrainerConfig discard = keep;
  discard.ps.discard_stale_pushes = true;

  const TrainResult kept =
      MakeTrainer(SystemKind::kPetuum, keep)->Train(data, cluster);
  const TrainResult dropped =
      MakeTrainer(SystemKind::kPetuum, discard)->Train(data, cluster);

  EXPECT_EQ(kept.faults.stale_pushes_discarded, 0u);
  EXPECT_GT(dropped.faults.stale_pushes_discarded, 0u);
  EXPECT_FALSE(dropped.diverged);
  for (size_t i = 0; i < dropped.final_weights.dim(); ++i) {
    EXPECT_TRUE(std::isfinite(dropped.final_weights[i]));
  }
}

}  // namespace
}  // namespace mllibstar
