#include "train/estimators.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace mllibstar {
namespace {

Dataset ClassificationData() {
  SyntheticSpec spec;
  spec.name = "est";
  spec.num_instances = 600;
  spec.num_features = 60;
  spec.avg_nnz = 6;
  spec.seed = 55;
  return GenerateSynthetic(spec);
}

EstimatorOptions FastOptions() {
  EstimatorOptions options;
  options.cluster = ClusterConfig::Cluster1(4);
  options.cluster.straggler_sigma = 0.0;
  options.trainer.base_lr = 0.5;
  options.trainer.lr_schedule = LrScheduleKind::kConstant;
  options.trainer.max_comm_steps = 10;
  return options;
}

TEST(SvmClassifierTest, FitPredictEvaluate) {
  const Dataset data = ClassificationData();
  SvmClassifier svm(FastOptions());
  EXPECT_FALSE(svm.fitted());
  ASSERT_TRUE(svm.Fit(data).ok());
  EXPECT_TRUE(svm.fitted());

  const ClassificationMetrics metrics = svm.Evaluate(data);
  EXPECT_GT(metrics.accuracy, 0.8);
  EXPECT_GT(metrics.auc, 0.85);

  const double label = svm.Predict(data.point(0));
  EXPECT_TRUE(label == 1.0 || label == -1.0);
}

TEST(SvmClassifierTest, FitOnEmptyDataFails) {
  Dataset empty(10);
  SvmClassifier svm(FastOptions());
  EXPECT_EQ(svm.Fit(empty).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(svm.fitted());
}

TEST(SvmClassifierTest, SaveBeforeFitFails) {
  SvmClassifier svm(FastOptions());
  EXPECT_EQ(svm.Save(testing::TempDir() + "/x.model").code(),
            StatusCode::kFailedPrecondition);
}

TEST(SvmClassifierTest, SaveLoadRoundTrip) {
  const Dataset data = ClassificationData();
  SvmClassifier svm(FastOptions());
  ASSERT_TRUE(svm.Fit(data).ok());
  const std::string path = testing::TempDir() + "/svm.model";
  ASSERT_TRUE(svm.Save(path).ok());

  SvmClassifier restored(FastOptions());
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_TRUE(restored.fitted());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(restored.Predict(data.point(i)), svm.Predict(data.point(i)));
  }
}

TEST(SvmClassifierTest, TrainResultExposed) {
  const Dataset data = ClassificationData();
  SvmClassifier svm(FastOptions());
  ASSERT_TRUE(svm.Fit(data).ok());
  EXPECT_EQ(svm.train_result().system, "mllib*");
  EXPECT_FALSE(svm.train_result().curve.empty());
  EXPECT_GT(svm.train_result().sim_seconds, 0.0);
}

TEST(SvmClassifierTest, DivergenceSurfacesAsError) {
  const Dataset data = ClassificationData();
  EstimatorOptions options = FastOptions();
  options.system = SystemKind::kPetuum;  // raw summation
  options.trainer.base_lr = 50.0;        // guaranteed blow-up
  options.trainer.batch_fraction = 0.5;
  options.trainer.max_comm_steps = 40;
  SvmClassifier svm(options);
  const Status status = svm.Fit(data);
  if (!status.ok()) {
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
    EXPECT_FALSE(svm.fitted());
  }
}

TEST(LogisticRegressionTest, ProbabilitiesAreCalibratedSigmoids) {
  const Dataset data = ClassificationData();
  LogisticRegressionClassifier lr(FastOptions());
  ASSERT_TRUE(lr.Fit(data).ok());
  for (size_t i = 0; i < 50; ++i) {
    const double p = lr.PredictProbability(data.point(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    // Probability and label prediction agree across the 0.5 boundary.
    EXPECT_EQ(lr.Predict(data.point(i)) > 0, p >= 0.5);
  }
}

TEST(LogisticRegressionTest, UsesLogisticLoss) {
  LogisticRegressionClassifier lr(FastOptions());
  const Dataset data = ClassificationData();
  ASSERT_TRUE(lr.Fit(data).ok());
  EXPECT_GT(lr.Evaluate(data).accuracy, 0.8);
}

TEST(LinearRegressionTest, FitsALinearTarget) {
  // y = 2*x0 - x1 with sparse one-hot rows.
  Dataset data(2, "reg");
  for (int i = 0; i < 200; ++i) {
    DataPoint p;
    if (i % 2 == 0) {
      p.features.Push(0, 1.0);
      p.label = 2.0;
    } else {
      p.features.Push(1, 1.0);
      p.label = -1.0;
    }
    data.Add(p);
  }
  EstimatorOptions options = FastOptions();
  options.trainer.base_lr = 0.2;
  options.trainer.max_comm_steps = 20;
  LinearRegression reg(options);
  ASSERT_TRUE(reg.Fit(data).ok());
  EXPECT_LT(reg.Evaluate(data), 0.05);
  DataPoint probe;
  probe.features.Push(0, 1.0);
  EXPECT_NEAR(reg.Predict(probe), 2.0, 0.2);
}

TEST(EstimatorTest, DifferentSystemsAllWork) {
  const Dataset data = ClassificationData();
  for (SystemKind kind : {SystemKind::kMllibMa, SystemKind::kPetuumStar,
                          SystemKind::kAngel}) {
    EstimatorOptions options = FastOptions();
    options.system = kind;
    if (kind == SystemKind::kPetuumStar) {
      // Per-batch communication: each step touches only 1% of the
      // partition, so a fair budget gives it more (cheap) steps.
      options.trainer.max_comm_steps = 100;
      options.trainer.batch_fraction = 0.1;
    }
    SvmClassifier svm(options);
    ASSERT_TRUE(svm.Fit(data).ok()) << SystemName(kind);
    EXPECT_GT(svm.Evaluate(data).accuracy, 0.7) << SystemName(kind);
  }
}

}  // namespace
}  // namespace mllibstar
