// Observability-layer tests: metrics registry semantics (including
// concurrent recording), span nesting, Chrome-trace and RunReport
// export well-formedness (each export is parsed back), and the hard
// invariant that enabling telemetry leaves every trainer's results —
// weights, curve, clocks, byte counts, and full trace — bit-identical,
// including under host parallelism and fault injection. Telemetry
// consumes no RNG; EXPECT_EQ on doubles is deliberate.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.h"
#include "data/synthetic.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/report_view.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "obs/time_series.h"
#include "train/report.h"
#include "train/trainer.h"

namespace mllibstar {
namespace {

/// Restores the process-wide sink to disabled-and-empty on scope exit
/// so obs tests cannot leak state into each other.
struct TelemetryGuard {
  TelemetryGuard() {
    Telemetry::Get().set_enabled(false);
    Telemetry::Get().Clear();
  }
  ~TelemetryGuard() {
    Telemetry::Get().set_enabled(false);
    Telemetry::Get().Clear();
  }
};

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  registry.Counter("requests").Add();
  registry.Counter("requests").Add(4);
  EXPECT_EQ(registry.CounterValue("requests"), 5u);

  registry.Gauge("queue_depth").Set(7.5);
  ObsHistogram& h = registry.Histogram("latency", {1.0, 10.0, 100.0});
  h.Record(0.5);
  h.Record(50.0);
  h.Record(1e6);  // overflow bucket

  const std::vector<MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  // Snapshot is ordered by canonical key.
  EXPECT_EQ(snapshot[0].name, "latency");
  EXPECT_EQ(snapshot[0].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(snapshot[0].count, 3u);
  ASSERT_EQ(snapshot[0].buckets.size(), 4u);
  EXPECT_EQ(snapshot[0].buckets[0], 1u);
  EXPECT_EQ(snapshot[0].buckets[2], 1u);
  EXPECT_EQ(snapshot[0].buckets[3], 1u);
  EXPECT_EQ(snapshot[1].name, "queue_depth");
  EXPECT_EQ(snapshot[1].value, 7.5);
  EXPECT_EQ(snapshot[2].name, "requests");
  EXPECT_EQ(snapshot[2].value, 5.0);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  registry.Counter("bytes", {{"path", "push"}, {"shard", "0"}}).Add(10);
  registry.Counter("bytes", {{"shard", "0"}, {"path", "push"}}).Add(5);
  EXPECT_EQ(registry.CounterValue("bytes", {{"shard", "0"}, {"path", "push"}}),
            15u);
  EXPECT_EQ(registry.Snapshot().size(), 1u);
}

TEST(MetricsRegistryTest, CanonicalKeySortsLabels) {
  EXPECT_EQ(MetricsRegistry::CanonicalKey("m", {}), "m");
  EXPECT_EQ(
      MetricsRegistry::CanonicalKey("m", {{"b", "2"}, {"a", "1"}}),
      "m{a=1,b=2}");
}

TEST(MetricsRegistryTest, CounterTotalSumsAcrossLabelSets) {
  MetricsRegistry registry;
  registry.Counter("bytes", {{"path", "push"}}).Add(3);
  registry.Counter("bytes", {{"path", "pull"}}).Add(4);
  registry.Counter("other").Add(100);
  EXPECT_EQ(registry.CounterTotal("bytes"), 7u);
  EXPECT_EQ(registry.CounterValue("bytes", {{"path", "missing"}}), 0u);
  // CounterValue on a missing series must not create it.
  EXPECT_EQ(registry.Snapshot().size(), 3u);
}

TEST(MetricsRegistryTest, ConcurrentRecordingLosesNothing) {
  MetricsRegistry registry;
  ObsHistogram& h = registry.Histogram("h", {10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &h, t] {
      // Half the threads create the series through the registry path
      // concurrently, the other half hammer a captured reference.
      for (int i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          registry.Counter("c", {{"t", "shared"}}).Add();
        } else {
          registry.Counter("c", {{"t", "shared"}}).Add();
        }
        h.Record(static_cast<double>(i % 200));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("c", {{"t", "shared"}}),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsReferencesValid) {
  MetricsRegistry registry;
  ObsCounter& c = registry.Counter("c");
  c.Add(9);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  c.Add(2);  // the reference must still point at the live series
  EXPECT_EQ(registry.CounterValue("c"), 2u);
}

TEST(MetricsRegistryTest, HistogramSnapshotCarriesQuantiles) {
  MetricsRegistry registry;
  ObsHistogram& h = registry.Histogram("lat", {1.0, 2.0, 5.0, 10.0});
  for (int i = 0; i < 50; ++i) h.Record(0.5);
  for (int i = 0; i < 45; ++i) h.Record(1.5);
  for (int i = 0; i < 5; ++i) h.Record(7.0);
  const std::vector<MetricSample> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 100u);
  EXPECT_EQ(snap[0].p50, 1.0);
  EXPECT_EQ(snap[0].p95, 2.0);
  EXPECT_EQ(snap[0].p99, 10.0);
}

TEST(MetricsRegistryTest, HistogramOverflowQuantileIsMinusOneNotInf) {
  // Samples past the last bound have no finite bound; the snapshot
  // encodes that as -1 (JSON cannot carry infinity), while the serve
  // layer's ObsHistogram::Quantile keeps returning +inf.
  MetricsRegistry registry;
  ObsHistogram& h = registry.Histogram("lat", {1.0});
  h.Record(50.0);
  const std::vector<MetricSample> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].p50, -1.0);
  EXPECT_TRUE(std::isinf(h.Quantile(0.5)));
}

TEST(ObsHistogramTest, QuantileSemanticsMatchServe) {
  ObsHistogram h({1.0, 2.0, 5.0});
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // empty
  h.Record(0.5);
  h.Record(1.5);
  h.Record(3.0);
  EXPECT_EQ(h.Quantile(0.01), 1.0);  // rank clamps to the first sample
  EXPECT_EQ(h.Quantile(1.0), 5.0);
  h.Record(100.0);  // overflow
  EXPECT_TRUE(std::isinf(h.Quantile(1.0)));
}

// ---------------------------------------------------------------------------
// Telemetry spans and events

TEST(TelemetryTest, DisabledSinkRecordsNothing) {
  TelemetryGuard guard;
  Telemetry& obs = Telemetry::Get();
  ASSERT_FALSE(obs.enabled());
  {
    ScopedSpan span("noop", "test");
    EXPECT_FALSE(span.active());
    span.SetSimRange(0.0, 1.0);
  }
  obs.RecordEvent("e", "test", 1.0);
  EXPECT_TRUE(obs.spans().empty());
  EXPECT_TRUE(obs.events().empty());
}

TEST(TelemetryTest, SpansNestWithDepths) {
  TelemetryGuard guard;
  Telemetry& obs = Telemetry::Get();
  obs.set_enabled(true);
  {
    ScopedSpan outer("outer", "test");
    EXPECT_TRUE(outer.active());
    {
      ScopedSpan inner("inner", "test");
      inner.SetSimRange(1.0, 2.0);
    }
  }
  {
    ScopedSpan next("next", "test");
  }
  const std::vector<SpanRecord> spans = obs.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Inner closes first; depths reflect nesting at open time.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[0].sim_start, 1.0);
  EXPECT_EQ(spans[0].sim_end, 2.0);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_LT(spans[1].sim_start, 0.0);  // no sim range attached
  EXPECT_EQ(spans[2].name, "next");
  EXPECT_EQ(spans[2].depth, 0);  // depth fully unwound
  EXPECT_LE(spans[0].host_start_us, spans[0].host_end_us);
}

TEST(TelemetryTest, JsonlLinesParse) {
  TelemetryGuard guard;
  Telemetry& obs = Telemetry::Get();
  obs.set_enabled(true);
  {
    ScopedSpan span("work \"quoted\"", "test");
    span.SetSimRange(0.25, 0.5);
  }
  obs.RecordEvent("fault", "test", 1.5, {{"node", "executor1"}});
  const std::string path = testing::TempDir() + "/telemetry.jsonl";
  ASSERT_TRUE(obs.WriteJsonl(path).ok());
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  std::set<std::string> types;
  while (std::getline(in, line)) {
    ++lines;
    const Result<JsonValue> parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    types.insert(parsed->Find("type")->string_value());
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(types, (std::set<std::string>{"span", "event"}));
}

TEST(TelemetryTest, BoundedBuffersDropNewestAndAccount) {
  TelemetryGuard guard;
  Telemetry& obs = Telemetry::Get();
  obs.set_enabled(true);
  const size_t old_span_cap = obs.span_capacity();
  const size_t old_event_cap = obs.event_capacity();
  obs.set_span_capacity(4);
  obs.set_event_capacity(3);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("s" + std::to_string(i), "test");
  }
  for (int i = 0; i < 10; ++i) {
    obs.RecordEvent("e" + std::to_string(i), "test", static_cast<double>(i));
  }
  ASSERT_EQ(obs.spans().size(), 4u);
  EXPECT_EQ(obs.events().size(), 3u);
  EXPECT_EQ(obs.spans_dropped(), 6u);
  EXPECT_EQ(obs.events_dropped(), 7u);
  // Drop-newest: the records kept are the earliest ones, so the head
  // of a long run (setup, first rounds) survives.
  EXPECT_EQ(obs.spans()[0].name, "s0");
  EXPECT_EQ(obs.events()[0].name, "e0");

  RunInfo info;
  info.system = "drop-test";
  const JsonValue report = BuildRunReport(info, &obs);
  const JsonValue* buffers = report.Find("telemetry");
  ASSERT_NE(buffers, nullptr);
  EXPECT_EQ(buffers->Find("spans")->number_value(), 4.0);
  EXPECT_EQ(buffers->Find("span_capacity")->number_value(), 4.0);
  EXPECT_EQ(buffers->Find("spans_dropped")->number_value(), 6.0);
  EXPECT_EQ(buffers->Find("events_dropped")->number_value(), 7.0);

  // Clear zeroes the drop counters along with the buffers.
  obs.Clear();
  EXPECT_EQ(obs.spans_dropped(), 0u);
  EXPECT_EQ(obs.events_dropped(), 0u);
  obs.set_span_capacity(old_span_cap);
  obs.set_event_capacity(old_event_cap);
}

// ---------------------------------------------------------------------------
// TimeSeriesRecorder windows

TEST(TimeSeriesTest, WindowsAlignToGridAndDeltasLandInFirstClosedWindow) {
  TimeSeriesRecorder rec;
  rec.Configure(0.5, 8);
  MetricsRegistry reg;
  rec.TrackCounters("bytes", {"x.bytes"});
  reg.Counter("x.bytes").Add(100);
  rec.AdvanceTo(0.6, reg);  // closes [0, 0.5)
  reg.Counter("x.bytes").Add(50);
  rec.AdvanceTo(2.1, reg);  // closes [0.5,1.0) [1.0,1.5) [1.5,2.0)
  const std::vector<SeriesSnapshot> snaps = rec.Snapshot(reg);
  const SeriesSnapshot* bytes = nullptr;
  for (const SeriesSnapshot& s : snaps) {
    if (s.name == "bytes") bytes = &s;
  }
  ASSERT_NE(bytes, nullptr);
  ASSERT_EQ(bytes->points.size(), 4u);
  EXPECT_EQ(bytes->points[0].t0, 0.0);
  EXPECT_EQ(bytes->points[0].t1, 0.5);
  EXPECT_EQ(bytes->points[0].value, 100.0);
  // The recorder only sees counter totals at sample points: the whole
  // 50-byte delta lands in the first closed window, the rest are 0.
  EXPECT_EQ(bytes->points[1].value, 50.0);
  EXPECT_EQ(bytes->points[2].value, 0.0);
  EXPECT_EQ(bytes->points[3].value, 0.0);
}

TEST(TimeSeriesTest, ObservedAggregationsFoldPerWindow) {
  TimeSeriesRecorder rec;
  rec.Configure(1.0, 8);
  MetricsRegistry reg;
  rec.Observe("m", SeriesAgg::kMean, 0.1, 2.0);
  rec.Observe("m", SeriesAgg::kMean, 0.2, 4.0);
  rec.Observe("x", SeriesAgg::kMax, 0.1, 2.0);
  rec.Observe("x", SeriesAgg::kMax, 0.2, 7.0);
  rec.AdvanceTo(1.0, reg);
  const std::vector<SeriesSnapshot> snaps = rec.Snapshot(reg);
  const SeriesSnapshot* mean = nullptr;
  const SeriesSnapshot* max = nullptr;
  for (const SeriesSnapshot& s : snaps) {
    if (s.name == "m") mean = &s;
    if (s.name == "x") max = &s;
  }
  ASSERT_NE(mean, nullptr);
  ASSERT_NE(max, nullptr);
  ASSERT_EQ(mean->points.size(), 1u);
  EXPECT_EQ(mean->points[0].value, 3.0);
  EXPECT_EQ(mean->points[0].count, 2u);
  ASSERT_EQ(max->points.size(), 1u);
  EXPECT_EQ(max->points[0].value, 7.0);
}

TEST(TimeSeriesTest, RingDropsOldestPastCapacityAndCounts) {
  TimeSeriesRecorder rec;
  rec.Configure(1.0, 4);
  MetricsRegistry reg;
  rec.Observe("v", SeriesAgg::kSum, 0.5, 1.0);
  rec.AdvanceTo(10.0, reg);  // closes windows [0,1) .. [9,10)
  const std::vector<SeriesSnapshot> snaps = rec.Snapshot(reg);
  const SeriesSnapshot* v = nullptr;
  for (const SeriesSnapshot& s : snaps) {
    if (s.name == "v") v = &s;
  }
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->points.size(), 4u);
  EXPECT_EQ(v->dropped, 6u);
  // The retained tail is the newest windows.
  EXPECT_EQ(v->points.front().t0, 6.0);
  EXPECT_EQ(v->points.back().t1, 10.0);
}

TEST(TimeSeriesTest, ConcurrentObserveAndAdvanceIsSafe) {
  // Hammered under tsan in CI: Observe and AdvanceTo race from
  // different threads; the recorder must neither crash nor lose
  // observations (every Observe lands in some window).
  TimeSeriesRecorder rec;
  rec.Configure(0.05, 64);
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, &reg, t] {
      for (int i = 0; i < kIters; ++i) {
        const double now = static_cast<double>(i) * 0.001;
        if (t % 2 == 0) {
          reg.Counter("c").Add();
          rec.Observe("obs", SeriesAgg::kSum, now, 1.0);
        } else {
          rec.AdvanceTo(now, reg);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  rec.AdvanceTo(2.5, reg);
  const std::vector<SeriesSnapshot> snaps = rec.Snapshot(reg);
  const SeriesSnapshot* obs = nullptr;
  for (const SeriesSnapshot& s : snaps) {
    if (s.name == "obs") obs = &s;
  }
  ASSERT_NE(obs, nullptr);
  uint64_t folded = 0;
  for (const SeriesPoint& p : obs->points) folded += p.count;
  EXPECT_EQ(folded, static_cast<uint64_t>(kThreads / 2) * kIters);
}

// ---------------------------------------------------------------------------
// Chrome trace export

TEST(ChromeTraceTest, ParsesBackWithTrackPerNodeAndStageMarkers) {
  TelemetryGuard guard;
  TraceLog trace;
  trace.Record("driver", 0.0, 1.0, ActivityKind::kUpdate, "step");
  trace.Record("executor1", 0.0, 2.0, ActivityKind::kCompute, "grad");
  trace.Record("executor2", 0.5, 2.5, ActivityKind::kCommunicate,
               "push, \"quoted\"");
  trace.MarkStage(1.0, "stage 1");

  Telemetry& obs = Telemetry::Get();
  obs.set_enabled(true);
  { ScopedSpan span("host work", "test"); }

  const JsonValue doc = ChromeTraceJson(trace, &obs);
  // Serialization must survive a parse round-trip.
  const Result<JsonValue> parsed = JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::string> sim_tracks;
  std::set<std::string> host_tracks;
  size_t stage_markers = 0;
  size_t slices = 0;
  for (size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const std::string ph = e.Find("ph")->string_value();
    const int pid = static_cast<int>(e.Find("pid")->number_value());
    if (ph == "M" && e.Find("name")->string_value() == "thread_name") {
      const std::string track =
          e.Find("args")->Find("name")->string_value();
      (pid == 1 ? sim_tracks : host_tracks).insert(track);
    }
    if (ph == "i" && e.Find("cat") != nullptr &&
        e.Find("cat")->string_value() == "stage") {
      ++stage_markers;
    }
    if (ph == "X" && pid == 1) ++slices;
  }
  EXPECT_EQ(sim_tracks,
            (std::set<std::string>{"driver", "executor1", "executor2"}));
  EXPECT_EQ(host_tracks.size(), 1u);
  EXPECT_EQ(stage_markers, 1u);
  EXPECT_EQ(slices, 3u);
}

TEST(ChromeTraceTest, SimSecondsMapToMicroseconds) {
  TraceLog trace;
  trace.Record("n", 1.0, 3.0, ActivityKind::kCompute, "");
  const JsonValue doc = ChromeTraceJson(trace);
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  for (size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    if (e.Find("ph")->string_value() != "X") continue;
    EXPECT_EQ(e.Find("ts")->number_value(), 1e6);
    EXPECT_EQ(e.Find("dur")->number_value(), 2e6);
  }
}

// ---------------------------------------------------------------------------
// RunReport export

Dataset ObsData() {
  SyntheticSpec spec;
  spec.name = "obs";
  spec.num_instances = 600;
  spec.num_features = 120;
  spec.avg_nnz = 10;
  spec.seed = 31;
  return GenerateSynthetic(spec);
}

/// Nonzero jitter, task failures, and executor crashes: the RNG-heavy
/// regime where an instrumentation point that consumed randomness
/// would be caught immediately.
ClusterConfig FaultyCluster() {
  ClusterConfig config = ClusterConfig::Cluster1(8);
  config.straggler_sigma = 0.08;
  config.task_failure_prob = 0.05;
  config.faults.worker_crash_prob = 0.05;
  config.faults.executor_restart_seconds = 2.0;
  return config;
}

/// FaultyCluster plus scripted churn through the failure detector: two
/// leaves, two joins, one rejoin — every membership code path fires
/// while telemetry records.
ClusterConfig ChurnyCluster() {
  ClusterConfig config = FaultyCluster();
  ChurnPlan plan;
  plan.heartbeat_interval_sec = 0.25;
  plan.suspicion_timeout_sec = 0.5;
  plan.initial_active = 6;
  plan.leaves = {{0, 1.0}, {1, 2.0}};
  plan.joins = {{6, 3.0}, {7, 4.0}};
  plan.rejoins = {{0, 5.0}};
  config.churn = plan;
  return config;
}

TrainerConfig ObsConfig(SystemKind kind) {
  TrainerConfig config;
  config.loss = LossKind::kLogistic;
  config.base_lr = kind == SystemKind::kPetuum ? 0.04 : 0.3;
  config.lr_schedule = LrScheduleKind::kInverseSqrt;
  config.batch_fraction = 0.1;
  config.max_comm_steps = 6;
  config.seed = 5;
  config.host_threads = 2;  // telemetry must also be inert off-thread
  return config;
}

TEST(RunReportTest, RoundTripsTrainResult) {
  TelemetryGuard guard;
  Telemetry::Get().set_enabled(true);
  const TrainResult result =
      MakeTrainer(SystemKind::kMllibStar, ObsConfig(SystemKind::kMllibStar))
          ->Train(ObsData(), FaultyCluster());
  const std::string path = testing::TempDir() + "/run_report.json";
  ASSERT_TRUE(WriteRunReport(result, path).ok());

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Result<JsonValue> parsed = JsonValue::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok());
  const JsonValue& report = *parsed;

  EXPECT_EQ(report.Find("schema")->string_value(), "mllibstar.run_report.v2");
  EXPECT_EQ(report.Find("system")->string_value(), result.system);
  const JsonValue* headline = report.Find("result");
  ASSERT_NE(headline, nullptr);
  EXPECT_EQ(headline->Find("comm_steps")->number_value(), result.comm_steps);
  EXPECT_EQ(headline->Find("sim_seconds")->number_value(),
            result.sim_seconds);
  EXPECT_EQ(headline->Find("total_bytes")->number_value(),
            static_cast<double>(result.total_bytes));
  const JsonValue* curve = report.Find("curve");
  ASSERT_NE(curve, nullptr);
  EXPECT_EQ(curve->Find("points")->size(), result.curve.points().size());
  const JsonValue* util = report.Find("utilization");
  ASSERT_NE(util, nullptr);
  EXPECT_GT(util->Find("per_node")->size(), 0u);
  const JsonValue* faults = report.Find("faults");
  ASSERT_NE(faults, nullptr);
  EXPECT_EQ(faults->Find("worker_crashes")->number_value(),
            static_cast<double>(result.faults.worker_crashes));
  // Telemetry was on, so the engine/comm metric series must be there.
  const JsonValue* metrics = report.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  std::set<std::string> names;
  for (size_t i = 0; i < metrics->size(); ++i) {
    names.insert(metrics->at(i).Find("name")->string_value());
  }
  EXPECT_TRUE(names.count("engine.worker_tasks"));
  EXPECT_TRUE(names.count("comm.raw_bytes"));

  // v2 sections: at least three windowed series with points (bytes on
  // the wire, the objective, the straggler spread), per-round profiles
  // with the compute/wait/comm split, the simulator self-profile, and
  // telemetry buffer accounting.
  const JsonValue* series = report.Find("series");
  ASSERT_NE(series, nullptr);
  std::set<std::string> series_with_points;
  for (size_t i = 0; i < series->size(); ++i) {
    const JsonValue& s = series->at(i);
    if (s.Find("points")->size() > 0) {
      series_with_points.insert(s.Find("name")->string_value());
    }
  }
  EXPECT_GE(series_with_points.size(), 3u);
  EXPECT_TRUE(series_with_points.count("bytes.wire"));
  EXPECT_TRUE(series_with_points.count("objective"));
  EXPECT_TRUE(series_with_points.count("straggler.spread"));

  const JsonValue* rounds = report.Find("rounds");
  ASSERT_NE(rounds, nullptr);
  ASSERT_EQ(rounds->size(), static_cast<size_t>(result.comm_steps));
  for (size_t i = 0; i < rounds->size(); ++i) {
    const JsonValue& r = rounds->at(i);
    EXPECT_EQ(r.Find("system")->string_value(), result.system);
    EXPECT_GT(r.Find("tasks")->number_value(), 0.0);
    EXPECT_GT(r.Find("compute_sec")->number_value(), 0.0);
    EXPECT_GE(r.Find("task_max")->number_value(),
              r.Find("task_p50")->number_value());
    EXPECT_GE(r.Find("sim_end")->number_value(),
              r.Find("sim_start")->number_value());
    const JsonValue* bytes = r.Find("bytes");
    ASSERT_NE(bytes, nullptr);
    EXPECT_GT(bytes->Find("raw")->number_value(), 0.0);
  }

  const JsonValue* profiler = report.Find("profiler");
  ASSERT_NE(profiler, nullptr);
  EXPECT_GT(profiler->Find("total_events")->number_value(), 0.0);
  EXPECT_EQ(profiler->Find("subsystems")->size(), 5u);
  EXPECT_GT(profiler->Find("host_us_per_sim_sec")->number_value(), 0.0);

  const JsonValue* buffers = report.Find("telemetry");
  ASSERT_NE(buffers, nullptr);
  EXPECT_GT(buffers->Find("spans")->number_value(), 0.0);
  EXPECT_EQ(buffers->Find("spans_dropped")->number_value(), 0.0);
  EXPECT_EQ(buffers->Find("events_dropped")->number_value(), 0.0);
}

TEST(RunReportTest, HistogramQuantilesParseBack) {
  TelemetryGuard guard;
  Telemetry& obs = Telemetry::Get();
  obs.set_enabled(true);
  ObsHistogram& h = obs.metrics().Histogram("t.lat", {1.0, 10.0});
  for (int i = 0; i < 9; ++i) h.Record(0.5);
  h.Record(5.0);
  RunInfo info;
  info.system = "hist-test";
  const Result<JsonValue> parsed =
      JsonValue::Parse(BuildRunReport(info, &obs).Dump(2));
  ASSERT_TRUE(parsed.ok());
  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* hist = nullptr;
  for (size_t i = 0; i < metrics->size(); ++i) {
    if (metrics->at(i).Find("name")->string_value() == "t.lat") {
      hist = &metrics->at(i);
    }
  }
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("kind")->string_value(), "histogram");
  EXPECT_EQ(hist->Find("count")->number_value(), 10.0);
  EXPECT_EQ(hist->Find("p50")->number_value(), 1.0);
  EXPECT_EQ(hist->Find("p95")->number_value(), 10.0);
  EXPECT_EQ(hist->Find("p99")->number_value(), 10.0);
}

TEST(RunReportTest, SectionsOmittedForNullPointers) {
  RunInfo info;
  info.system = "bare";
  const JsonValue report = BuildRunReport(info);
  EXPECT_TRUE(report.Has("result"));
  EXPECT_FALSE(report.Has("curve"));
  EXPECT_FALSE(report.Has("utilization"));
  EXPECT_FALSE(report.Has("faults"));
  EXPECT_FALSE(report.Has("metrics"));
}

// ---------------------------------------------------------------------------
// The hard invariant: telemetry on/off is bit-identical, all systems.

void ExpectBitIdentical(const TrainResult& a, const TrainResult& b) {
  EXPECT_EQ(a.system, b.system);
  EXPECT_EQ(a.comm_steps, b.comm_steps);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.total_model_updates, b.total_model_updates);
  EXPECT_EQ(a.diverged, b.diverged);
  ASSERT_EQ(a.curve.points().size(), b.curve.points().size());
  for (size_t i = 0; i < a.curve.points().size(); ++i) {
    EXPECT_EQ(a.curve.points()[i].comm_step, b.curve.points()[i].comm_step);
    EXPECT_EQ(a.curve.points()[i].time_sec, b.curve.points()[i].time_sec);
    EXPECT_EQ(a.curve.points()[i].objective, b.curve.points()[i].objective);
  }
  ASSERT_EQ(a.final_weights.dim(), b.final_weights.dim());
  for (size_t i = 0; i < a.final_weights.dim(); ++i) {
    EXPECT_EQ(a.final_weights[i], b.final_weights[i]) << "coordinate " << i;
  }
  EXPECT_EQ(a.faults.worker_crashes, b.faults.worker_crashes);
  EXPECT_EQ(a.faults.lineage_recomputes, b.faults.lineage_recomputes);
  EXPECT_EQ(a.faults.ps_retries, b.faults.ps_retries);
  ASSERT_EQ(a.trace.events().size(), b.trace.events().size());
  for (size_t i = 0; i < a.trace.events().size(); ++i) {
    const TraceEvent& ea = a.trace.events()[i];
    const TraceEvent& eb = b.trace.events()[i];
    EXPECT_EQ(ea.node, eb.node);
    EXPECT_EQ(ea.start, eb.start);
    EXPECT_EQ(ea.end, eb.end);
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.detail, eb.detail);
  }
}

class TelemetryIdentityTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(TelemetryIdentityTest, EnablingTelemetryIsBitInvisible) {
  TelemetryGuard guard;
  const Dataset data = ObsData();
  const ClusterConfig cluster = FaultyCluster();
  const TrainerConfig config = ObsConfig(GetParam());

  Telemetry::Get().set_enabled(false);
  const TrainResult off = MakeTrainer(GetParam(), config)->Train(data, cluster);

  Telemetry::Get().set_enabled(true);
  Telemetry::Get().Clear();
  const TrainResult on = MakeTrainer(GetParam(), config)->Train(data, cluster);

  // The instrumentation actually fired...
  EXPECT_FALSE(Telemetry::Get().spans().empty());
  EXPECT_FALSE(Telemetry::Get().metrics().Snapshot().empty());
  // ...and changed nothing.
  ExpectBitIdentical(off, on);
}

TEST_P(TelemetryIdentityTest, BitInvisibleUnderChurnAndHostThreads) {
  // The strongest regime: 8 host threads, crash faults, and scripted
  // worker churn, with the full v2 recording stack (windowed series,
  // round profiles, EngineProfiler) live.
  TelemetryGuard guard;
  const Dataset data = ObsData();
  const ClusterConfig cluster = ChurnyCluster();
  TrainerConfig config = ObsConfig(GetParam());
  config.host_threads = 8;

  Telemetry::Get().set_enabled(false);
  const TrainResult off = MakeTrainer(GetParam(), config)->Train(data, cluster);

  Telemetry::Get().set_enabled(true);
  Telemetry::Get().Clear();
  const TrainResult on = MakeTrainer(GetParam(), config)->Train(data, cluster);

  EXPECT_FALSE(Telemetry::Get().spans().empty());
  ExpectBitIdentical(off, on);
}

/// The exported series + rounds sections as a byte string (the
/// profiler/telemetry sections carry host-time numbers and are
/// legitimately run-dependent, so they are excluded).
std::string SeriesAndRoundsDump() {
  RunInfo info;
  const JsonValue report = BuildRunReport(info, &Telemetry::Get());
  return report.Find("series")->Dump(2) + "\n" +
         report.Find("rounds")->Dump(2);
}

TEST_P(TelemetryIdentityTest, WindowedSeriesByteIdenticalAcrossHostThreads) {
  // Windows align to virtual time and close at deterministic trainer
  // sample points, so the serialized series and round profiles must be
  // byte-identical for any host_threads value.
  TelemetryGuard guard;
  const Dataset data = ObsData();
  const ClusterConfig cluster = FaultyCluster();
  TrainerConfig config = ObsConfig(GetParam());
  Telemetry::Get().set_enabled(true);

  config.host_threads = 1;
  Telemetry::Get().Clear();
  MakeTrainer(GetParam(), config)->Train(data, cluster);
  const std::string single = SeriesAndRoundsDump();

  config.host_threads = 8;
  Telemetry::Get().Clear();
  MakeTrainer(GetParam(), config)->Train(data, cluster);
  const std::string threaded = SeriesAndRoundsDump();

  EXPECT_EQ(single, threaded);
  EXPECT_NE(single.find("\"points\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, TelemetryIdentityTest,
    ::testing::Values(SystemKind::kMllib, SystemKind::kMllibMa,
                      SystemKind::kMllibStar, SystemKind::kPetuum,
                      SystemKind::kPetuumStar, SystemKind::kAngel,
                      SystemKind::kMllibLbfgs),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name = SystemName(info.param);
      for (char& c : name) {
        if (c == '*') {
          c = 'S';
        } else if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Offline report renderer

TEST(ReportViewTest, SparklineScalesAndHandlesEdgeCases) {
  EXPECT_EQ(Sparkline({}), "");
  EXPECT_FALSE(Sparkline({5.0, 5.0}).empty());  // flat -> mid-level bars
  const std::string line = Sparkline({0.0, 1.0, 2.0, 3.0});
  // One glyph per value; the first maps to the lowest level, the last
  // to the highest.
  EXPECT_EQ(line.size(), 4 * std::string("▁").size());
  EXPECT_EQ(line.substr(0, std::string("▁").size()), "▁");
  EXPECT_EQ(line.substr(line.size() - std::string("█").size()), "█");
}

TEST(ReportViewTest, RendersV2ReportWithSeriesRoundsAndProfiler) {
  TelemetryGuard guard;
  Telemetry::Get().set_enabled(true);
  const TrainResult result =
      MakeTrainer(SystemKind::kMllibStar, ObsConfig(SystemKind::kMllibStar))
          ->Train(ObsData(), FaultyCluster());
  const std::string path = testing::TempDir() + "/view_report.json";
  ASSERT_TRUE(WriteRunReport(result, path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Result<JsonValue> parsed = JsonValue::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok());

  const std::string rendered = RenderRunReport(*parsed);
  EXPECT_NE(rendered.find("mllibstar.run_report.v2"), std::string::npos);
  EXPECT_NE(rendered.find("system mllib*"), std::string::npos);
  EXPECT_NE(rendered.find("series ("), std::string::npos);
  EXPECT_NE(rendered.find("bytes.wire"), std::string::npos);
  EXPECT_NE(rendered.find("straggler.spread"), std::string::npos);
  EXPECT_NE(rendered.find("rounds ("), std::string::npos);
  EXPECT_NE(rendered.find("profiler:"), std::string::npos);
  EXPECT_NE(rendered.find("engine"), std::string::npos);
  EXPECT_NE(rendered.find("telemetry: spans="), std::string::npos);
}

TEST(ReportViewTest, RendersV1SubsetWithoutNewSections) {
  // A v1-era report (no series/rounds/profiler) must still render its
  // subset — the viewer is schema-tolerant, not schema-gated.
  const char* v1 =
      R"({"schema": "mllibstar.run_report.v1", "system": "mllib",)"
      R"( "result": {"comm_steps": 3, "sim_seconds": 1.5,)"
      R"( "total_bytes": 2048, "total_model_updates": 7,)"
      R"( "diverged": false}})";
  const Result<JsonValue> parsed = JsonValue::Parse(v1);
  ASSERT_TRUE(parsed.ok());
  const std::string rendered = RenderRunReport(*parsed);
  EXPECT_NE(rendered.find("mllibstar.run_report.v1"), std::string::npos);
  EXPECT_NE(rendered.find("comm_steps=3"), std::string::npos);
  EXPECT_NE(rendered.find("2 KiB"), std::string::npos);
  EXPECT_EQ(rendered.find("series ("), std::string::npos);
  EXPECT_EQ(rendered.find("profiler:"), std::string::npos);
}

}  // namespace
}  // namespace mllibstar
