#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "online/admission.h"
#include "online/online_pipeline.h"
#include "online/request_router.h"
#include "online/split_scorer.h"

namespace mllibstar {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Small, fast pipeline config shared by the tests.
OnlinePipelineConfig SmallConfig(const std::string& checkpoint_name) {
  OnlinePipelineConfig config;
  config.drift.base.num_features = 256;
  config.drift.base.avg_nnz = 6;
  config.drift.base.label_noise = 0.05;
  config.drift.segment_batches = 2;
  config.drift.rotation_angle = 0.3;
  config.drift.noise_ramp_per_segment = 0.05;
  config.drift.seed = 1234;

  config.rounds = 4;
  config.batches_per_round = 2;
  config.batch_size = 32;
  config.window_batches = 4;
  config.steps_per_round = 2;
  config.requests_per_round = 128;
  config.traffic_seed = 777;

  config.trainer.loss = LossKind::kLogistic;
  config.trainer.base_lr = 0.3;
  config.trainer.batch_fraction = 0.5;
  config.cluster = ClusterConfig::Cluster1(4);

  config.router.num_replicas = 2;
  config.checkpoint_path = TempPath(checkpoint_name);
  return config;
}

GlmModel FilledModel(size_t dim, double value) {
  GlmModel model(dim);
  for (size_t i = 0; i < dim; ++i) (*model.mutable_weights())[i] = value;
  return model;
}

// ------------------------------------------------------- AdmissionController

TEST(AdmissionControllerTest, CreditAccumulatorSpreadsSheds) {
  AdmissionController admission(AdmissionConfig{});
  // Fraction 1.0: everything admitted.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(admission.Admit());

  // Push one over-budget window through to halve the fraction.
  AdmissionConfig config;
  config.min_window_count = 4;
  AdmissionController halved(config);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(halved.Admit());
    halved.Record(config.p99_budget_us * 10.0);
  }
  halved.EndWindow();
  EXPECT_DOUBLE_EQ(halved.admit_fraction(), 0.5);
  // At fraction 0.5 exactly every other request is admitted.
  int admitted = 0;
  for (int i = 0; i < 10; ++i) admitted += halved.Admit() ? 1 : 0;
  EXPECT_EQ(admitted, 5);
}

TEST(AdmissionControllerTest, AimdShedsThenRecovers) {
  AdmissionConfig config;
  config.min_window_count = 2;
  config.shed_factor = 0.5;
  config.recover_increment = 0.25;
  AdmissionController admission(config);

  // Two violating windows: 1.0 → 0.5 → 0.25.
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 4; ++i) {
      admission.Admit();
      admission.Record(config.p99_budget_us * 5.0);
    }
    admission.EndWindow();
  }
  EXPECT_DOUBLE_EQ(admission.admit_fraction(), 0.25);
  EXPECT_GT(admission.last_p99_us(), config.p99_budget_us);

  // Healthy windows recover additively and saturate at 1.0.
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 4; ++i) {
      admission.Admit();
      admission.Record(1.0);
    }
    admission.EndWindow();
  }
  EXPECT_DOUBLE_EQ(admission.admit_fraction(), 1.0);
}

TEST(AdmissionControllerTest, ShortWindowMakesNoDecision) {
  AdmissionConfig config;
  config.min_window_count = 32;
  AdmissionController admission(config);
  admission.Admit();
  admission.Record(config.p99_budget_us * 100.0);
  admission.EndWindow();  // 1 sample < 32: fraction unchanged
  EXPECT_DOUBLE_EQ(admission.admit_fraction(), 1.0);
}

// ------------------------------------------------------------- RequestRouter

TEST(RequestRouterTest, ShardingIsStableAndDeploysPropagate) {
  RequestRouterConfig config;
  config.num_replicas = 3;
  RequestRouter router(config);
  for (uint64_t user = 0; user < 50; ++user) {
    const size_t replica = router.ReplicaFor(user);
    EXPECT_LT(replica, 3u);
    EXPECT_EQ(router.ReplicaFor(user), replica) << "sharding must be stable";
  }

  const uint64_t v1 = router.DeployAll(FilledModel(8, 1.0), "v1");
  const uint64_t v2 = router.DeployAll(FilledModel(8, 2.0), "v2");
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(v2, 2u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(router.registry(r).Active()->version, 2u);
  }
  ASSERT_TRUE(router.ActivateAll(1).ok());
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(router.registry(r).Active()->version, 1u);
  }
  ASSERT_TRUE(router.RollbackAll().ok());
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(router.registry(r).Active()->version, 2u);
  }
}

TEST(RequestRouterTest, RoutedMarginsMatchDirectModelCalls) {
  RequestRouterConfig config;
  config.num_replicas = 2;
  RequestRouter router(config);
  GlmModel model(16);
  Rng rng(5);
  for (size_t i = 0; i < 16; ++i) {
    (*model.mutable_weights())[i] = rng.NextGaussian();
  }
  router.DeployAll(model, "v1");

  std::vector<OnlineRequest> traffic(40);
  for (size_t i = 0; i < traffic.size(); ++i) {
    traffic[i].user_id = i * 1315423911ull;
    traffic[i].features.Push(static_cast<FeatureIndex>(i % 16),
                             rng.NextGaussian());
  }
  const auto routed = router.Route(traffic);
  ASSERT_EQ(routed.size(), traffic.size());
  for (size_t i = 0; i < routed.size(); ++i) {
    ASSERT_TRUE(routed[i].admitted);
    EXPECT_EQ(routed[i].replica, router.ReplicaFor(traffic[i].user_id));
    EXPECT_EQ(routed[i].score.margin, model.Margin(traffic[i].features));
    EXPECT_GT(routed[i].virtual_latency_us, 0.0);
  }
  EXPECT_EQ(router.total_admitted(), traffic.size());
  EXPECT_EQ(router.total_shed(), 0u);
}

// --------------------------------------------------------------- SplitScorer

TEST(SplitScorerTest, IdenticalVersionsHaveZeroDelta) {
  ModelRegistry registry;
  registry.Deploy(FilledModel(8, 0.5), "v1");
  registry.Deploy(FilledModel(8, 0.5), "v2");
  SplitScorer scorer(&registry);

  std::vector<OnlineRequest> traffic(20);
  for (size_t i = 0; i < traffic.size(); ++i) {
    traffic[i].features.Push(static_cast<FeatureIndex>(i % 8), 1.0);
    traffic[i].true_label = 1.0;
  }
  const auto report = scorer.Compare(1, 2, traffic);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->requests, traffic.size());
  EXPECT_DOUBLE_EQ(report->accuracy_delta(), 0.0);
  EXPECT_DOUBLE_EQ(report->mean_abs_margin_delta, 0.0);
  EXPECT_EQ(report->mean_margin_a, report->mean_margin_b);
}

TEST(SplitScorerTest, UnknownVersionIsNotFound) {
  ModelRegistry registry;
  registry.Deploy(FilledModel(4, 1.0), "v1");
  SplitScorer scorer(&registry);
  EXPECT_EQ(scorer.Compare(1, 9, {}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(scorer.Compare(9, 1, {}).status().code(), StatusCode::kNotFound);
}

TEST(SplitScorerTest, AbReportJsonRoundTripsExactly) {
  AbReport report;
  report.version_a = 3;
  report.version_b = 4;
  report.requests = 128;
  report.accuracy_a = 0.7265625;
  report.accuracy_b = 0.796875;
  report.mean_margin_a = -0.12345678901234567;
  report.mean_margin_b = 3.3333333333333335;
  report.mean_abs_margin_delta = 1e-17;
  report.host_us_a = 12.25;
  report.host_us_b = 8.5;

  const auto parsed = JsonValue::Parse(report.ToJson().Dump(2));
  ASSERT_TRUE(parsed.ok());
  const auto back = AbReport::FromJson(*parsed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->version_a, report.version_a);
  EXPECT_EQ(back->version_b, report.version_b);
  EXPECT_EQ(back->requests, report.requests);
  // %.17g serialization: every double survives bit-exactly.
  EXPECT_EQ(back->accuracy_a, report.accuracy_a);
  EXPECT_EQ(back->accuracy_b, report.accuracy_b);
  EXPECT_EQ(back->mean_margin_a, report.mean_margin_a);
  EXPECT_EQ(back->mean_margin_b, report.mean_margin_b);
  EXPECT_EQ(back->mean_abs_margin_delta, report.mean_abs_margin_delta);
  EXPECT_EQ(back->accuracy_delta(), report.accuracy_delta());
}

// ------------------------------------------------------------ OnlinePipeline

// Acceptance (a): with fixed seeds the deployed version sequence and
// every scored margin are bit-identical across host-thread settings —
// in the trainers AND in the scoring fan-out.
TEST(OnlinePipelineTest, BitIdenticalAcrossHostThreads) {
  OnlinePipelineConfig sequential = SmallConfig("online_seq.ckpt");
  sequential.host_threads = 1;
  sequential.router.scorer.num_threads = 1;

  OnlinePipelineConfig parallel = SmallConfig("online_par.ckpt");
  parallel.host_threads = 8;
  parallel.router.scorer.num_threads = 8;
  parallel.router.scorer.chunk_size = 8;  // force multi-chunk batches

  OnlinePipeline a(sequential);
  OnlinePipeline b(parallel);
  const auto run_a = a.Run();
  const auto run_b = b.Run();
  ASSERT_TRUE(run_a.ok()) << run_a.status().ToString();
  ASSERT_TRUE(run_b.ok()) << run_b.status().ToString();

  ASSERT_EQ(run_a->deploys.size(), run_b->deploys.size());
  for (size_t i = 0; i < run_a->deploys.size(); ++i) {
    EXPECT_EQ(run_a->deploys[i].version, run_b->deploys[i].version);
    EXPECT_EQ(run_a->deploys[i].round, run_b->deploys[i].round);
    EXPECT_EQ(run_a->deploys[i].staleness_batches,
              run_b->deploys[i].staleness_batches);
    EXPECT_EQ(run_a->deploys[i].train_objective,
              run_b->deploys[i].train_objective);
  }

  ASSERT_FALSE(run_a->margins.empty());
  ASSERT_EQ(run_a->margins.size(), run_b->margins.size());
  for (size_t i = 0; i < run_a->margins.size(); ++i) {
    EXPECT_EQ(run_a->margins[i], run_b->margins[i]) << "margin " << i;
  }

  // Admission decisions and latency stats ride on the same determinism.
  ASSERT_EQ(run_a->rounds.size(), run_b->rounds.size());
  for (size_t i = 0; i < run_a->rounds.size(); ++i) {
    EXPECT_EQ(run_a->rounds[i].admitted, run_b->rounds[i].admitted);
    EXPECT_EQ(run_a->rounds[i].shed, run_b->rounds[i].shed);
    EXPECT_EQ(run_a->rounds[i].p99_virtual_us, run_b->rounds[i].p99_virtual_us);
    EXPECT_EQ(run_a->rounds[i].online_accuracy,
              run_b->rounds[i].online_accuracy);
  }
  EXPECT_EQ(run_a->final_weights.values(), run_b->final_weights.values());
}

// Acceptance (b): a latency spike pushes p99 over budget, admission
// control sheds, and once the spike passes the admit fraction recovers
// to 1.0 with no shedding in the final round.
TEST(OnlinePipelineTest, AdmissionShedsUnderSpikeAndRecovers) {
  OnlinePipelineConfig config = SmallConfig("online_spike.ckpt");
  config.rounds = 8;
  config.requests_per_round = 256;
  config.router.num_replicas = 4;
  config.spike.start_round = 2;
  config.spike.end_round = 4;
  config.spike.multiplier = 4.0;

  OnlinePipeline pipeline(config);
  const auto run = pipeline.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->rounds.size(), config.rounds);

  // The spike rounds must register over-budget p99s...
  EXPECT_GT(run->rounds[2].p99_virtual_us,
            config.router.admission.p99_budget_us);
  // ...causing shedding while the controller reacts...
  size_t shed_during_reaction = 0;
  for (size_t r = 2; r <= 4 && r < run->rounds.size(); ++r) {
    shed_during_reaction += run->rounds[r].shed;
  }
  EXPECT_GT(shed_during_reaction, 0u);
  EXPECT_GT(run->total_shed, 0u);

  // ...and full recovery after it: final round sheds nothing and every
  // replica is back to admitting everything.
  EXPECT_EQ(run->rounds.back().shed, 0u);
  EXPECT_DOUBLE_EQ(run->rounds.back().admit_fraction, 1.0);
  for (size_t r = 0; r < pipeline.router().num_replicas(); ++r) {
    EXPECT_DOUBLE_EQ(pipeline.router().admission(r).admit_fraction(), 1.0);
  }
}

// Acceptance (c): the A/B deltas the pipeline publishes land in the
// RunReport's metric series and survive a JSON parse round trip
// bit-exactly.
TEST(OnlinePipelineTest, AbDeltasRoundTripThroughRunReport) {
  Telemetry& telemetry = Telemetry::Get();
  telemetry.Clear();
  telemetry.set_enabled(true);

  OnlinePipelineConfig config = SmallConfig("online_report.ckpt");
  OnlinePipeline pipeline(config);
  const auto run = pipeline.Run();
  telemetry.set_enabled(false);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Find the last A/B comparison the pipeline recorded.
  const RoundRecord* last_ab = nullptr;
  for (const RoundRecord& r : run->rounds) {
    if (r.has_ab) last_ab = &r;
  }
  ASSERT_NE(last_ab, nullptr) << "deploy_every=1 must produce A/B rounds";

  RunInfo info;
  info.system = run->system;
  const JsonValue report = BuildRunReport(info, &telemetry);
  const auto parsed = JsonValue::Parse(report.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  double delta = 0.0, abs_margin_delta = 0.0;
  bool found_delta = false, found_margin = false;
  for (size_t i = 0; i < metrics->size(); ++i) {
    const JsonValue& entry = metrics->at(i);
    const JsonValue* name = entry.Find("name");
    if (name == nullptr) continue;
    if (name->string_value() == "online.ab.accuracy_delta") {
      delta = entry.Find("value")->number_value();
      found_delta = true;
    }
    if (name->string_value() == "online.ab.mean_abs_margin_delta") {
      abs_margin_delta = entry.Find("value")->number_value();
      found_margin = true;
    }
  }
  ASSERT_TRUE(found_delta);
  ASSERT_TRUE(found_margin);
  // Bit-exact: the gauges went through %.17g dump + parse.
  EXPECT_EQ(delta, last_ab->ab.accuracy_delta());
  EXPECT_EQ(abs_margin_delta, last_ab->ab.mean_abs_margin_delta);

  // The per-round A/B reports round-trip standalone too.
  const auto ab_parsed = JsonValue::Parse(last_ab->ab.ToJson().Dump(0));
  ASSERT_TRUE(ab_parsed.ok());
  const auto back = AbReport::FromJson(*ab_parsed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->accuracy_delta(), last_ab->ab.accuracy_delta());
}

// Deploy cadence > 1: staleness accrues between deploys and resets on
// each hot-swap.
TEST(OnlinePipelineTest, StalenessAccruesBetweenDeploys) {
  OnlinePipelineConfig config = SmallConfig("online_stale.ckpt");
  config.rounds = 6;
  config.deploy_every = 2;
  OnlinePipeline pipeline(config);
  const auto run = pipeline.Run();
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->deploys.size(), 3u);
  // The first deploy replaces nothing; later ones cure the staleness
  // the serving model accumulated while training-only rounds passed.
  EXPECT_EQ(run->deploys[0].staleness_batches, 0u);
  for (size_t i = 1; i < run->deploys.size(); ++i) {
    EXPECT_EQ(run->deploys[i].staleness_batches,
              2 * config.batches_per_round);
  }
  for (const RoundRecord& r : run->rounds) {
    EXPECT_EQ(r.staleness_batches,
              (r.round % 2) * config.batches_per_round);
  }
}

}  // namespace
}  // namespace mllibstar
