// Tests for the SIMD kernel layer (core/simd) and the mixed-precision
// compute path (DESIGN §13).
//
// The load-bearing property is the f64 bit-exactness contract: every
// dispatch tier must reproduce the scalar reference bit-for-bit, so
// the choice of SIMD level can never perturb a simulated result. The
// f32 kernels are tolerance-checked instead (they read narrowed
// values and the AVX2/AVX-512 tiers fuse multiply-adds), with the
// budget documented in DESIGN §13.
#include "core/simd/dispatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/csr_block.h"
#include "core/gd.h"
#include "core/loss.h"
#include "core/simd/kernels.h"
#include "core/vector.h"
#include "data/synthetic.h"
#include "train/trainer.h"

namespace mllibstar {
namespace {

// Restores the active dispatch level on scope exit so tests that pin
// a level cannot leak it into later tests in this binary.
struct SimdLevelGuard {
  ~SimdLevelGuard() { simd::SetSimdLevel(simd::DetectedSimdLevel()); }
};

std::vector<simd::SimdLevel> AvailableLevels() {
  std::vector<simd::SimdLevel> levels = {simd::SimdLevel::kScalar};
  const simd::SimdLevel detected = simd::DetectedSimdLevel();
  for (simd::SimdLevel l : {simd::SimdLevel::kSse2, simd::SimdLevel::kAvx2,
                            simd::SimdLevel::kAvx512}) {
    if (detected >= l) levels.push_back(l);
  }
  return levels;
}

// Lengths chosen to cover every vector-loop remainder: 0..16 hits all
// 4-wide and 8-wide tails, 31..33 straddles the AVX-512 dot's
// wide-path threshold, and the larger ones exercise multi-block rows.
std::vector<size_t> RemainderLengths() {
  std::vector<size_t> lengths;
  for (size_t n = 0; n <= 16; ++n) lengths.push_back(n);
  for (size_t n : {31u, 32u, 33u, 39u, 40u, 63u, 64u, 65u, 100u, 511u,
                   512u, 513u}) {
    lengths.push_back(n);
  }
  return lengths;
}

struct TestRow {
  std::vector<FeatureIndex> indices;
  std::vector<double> values;
  std::vector<float> values_f32;
};

TestRow MakeSortedRow(size_t dim, size_t nnz, Rng* rng) {
  TestRow row;
  std::vector<char> used(dim, 0);
  while (row.indices.size() < nnz) {
    const FeatureIndex j = static_cast<FeatureIndex>(rng->NextUint64(dim));
    if (!used[j]) {
      used[j] = 1;
      row.indices.push_back(j);
    }
  }
  std::sort(row.indices.begin(), row.indices.end());
  for (size_t i = 0; i < nnz; ++i) {
    const double v = rng->NextDouble(-1.0, 1.0);
    row.values.push_back(v);
    row.values_f32.push_back(static_cast<float>(v));
  }
  return row;
}

TEST(DispatchTest, LevelNamesRoundTrip) {
  for (simd::SimdLevel level :
       {simd::SimdLevel::kScalar, simd::SimdLevel::kSse2,
        simd::SimdLevel::kAvx2, simd::SimdLevel::kAvx512}) {
    const auto parsed = simd::ParseSimdLevel(simd::SimdLevelName(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(simd::ParseSimdLevel("auto").has_value());
  EXPECT_FALSE(simd::ParseSimdLevel("avx999").has_value());
}

TEST(DispatchTest, SetLevelClampsToDetected) {
  SimdLevelGuard guard;
  const simd::SimdLevel detected = simd::DetectedSimdLevel();
  const simd::SimdLevel applied = simd::SetSimdLevel(simd::SimdLevel::kAvx512);
  EXPECT_LE(static_cast<int>(applied), static_cast<int>(detected));
  EXPECT_EQ(simd::ActiveSimdLevel(), applied);
  EXPECT_EQ(simd::SetSimdLevel(simd::SimdLevel::kScalar),
            simd::SimdLevel::kScalar);
  EXPECT_EQ(simd::ActiveSimdLevel(), simd::SimdLevel::kScalar);
}

#if defined(__x86_64__) || defined(_M_X64)
TEST(DispatchTest, DetectedAtLeastSse2OnX86) {
  EXPECT_GE(static_cast<int>(simd::DetectedSimdLevel()),
            static_cast<int>(simd::SimdLevel::kSse2));
}
#endif

TEST(DispatchTest, TableMatchesLevel) {
  for (simd::SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(simd::KernelsFor(level).level, level)
        << simd::SimdLevelName(level);
  }
}

// ---- f64 bit-exactness across tiers --------------------------------

TEST(KernelBitEqualityTest, SparseDotF64AllTiers) {
  Rng rng(101);
  const size_t dim = 1024;
  std::vector<double> w(dim);
  for (double& v : w) v = rng.NextDouble(-2.0, 2.0);
  const simd::KernelDispatch& scalar =
      simd::KernelsFor(simd::SimdLevel::kScalar);
  for (size_t nnz : RemainderLengths()) {
    const TestRow row = MakeSortedRow(dim, nnz, &rng);
    const double ref =
        scalar.sparse_dot_f64(w.data(), row.indices.data(),
                              row.values.data(), nnz);
    for (simd::SimdLevel level : AvailableLevels()) {
      const double got = simd::KernelsFor(level).sparse_dot_f64(
          w.data(), row.indices.data(), row.values.data(), nnz);
      EXPECT_EQ(got, ref) << simd::SimdLevelName(level) << " nnz=" << nnz;
    }
  }
}

TEST(KernelBitEqualityTest, SparseAxpyF64AllTiers) {
  Rng rng(102);
  const size_t dim = 1024;
  std::vector<double> w0(dim);
  for (double& v : w0) v = rng.NextDouble(-2.0, 2.0);
  const simd::KernelDispatch& scalar =
      simd::KernelsFor(simd::SimdLevel::kScalar);
  for (size_t nnz : RemainderLengths()) {
    const TestRow row = MakeSortedRow(dim, nnz, &rng);
    const double alpha = rng.NextDouble(-1.0, 1.0);
    std::vector<double> ref = w0;
    scalar.sparse_axpy_f64(ref.data(), row.indices.data(),
                           row.values.data(), nnz, alpha);
    for (simd::SimdLevel level : AvailableLevels()) {
      std::vector<double> got = w0;
      simd::KernelsFor(level).sparse_axpy_f64(
          got.data(), row.indices.data(), row.values.data(), nnz, alpha);
      for (size_t i = 0; i < dim; ++i) {
        ASSERT_EQ(got[i], ref[i])
            << simd::SimdLevelName(level) << " nnz=" << nnz << " i=" << i;
      }
    }
  }
}

TEST(KernelBitEqualityTest, DenseKernelsF64AllTiers) {
  Rng rng(103);
  const simd::KernelDispatch& scalar =
      simd::KernelsFor(simd::SimdLevel::kScalar);
  for (size_t n : RemainderLengths()) {
    std::vector<double> a(n), b(n);
    for (double& v : a) v = rng.NextDouble(-2.0, 2.0);
    for (double& v : b) v = rng.NextDouble(-2.0, 2.0);
    const double alpha = rng.NextDouble(-1.0, 1.0);
    const double ref_dot = scalar.dense_dot(a.data(), b.data(), n);
    std::vector<double> ref_w = a;
    scalar.dense_axpy(ref_w.data(), b.data(), n, alpha);
    for (simd::SimdLevel level : AvailableLevels()) {
      EXPECT_EQ(simd::KernelsFor(level).dense_dot(a.data(), b.data(), n),
                ref_dot)
          << simd::SimdLevelName(level) << " n=" << n;
      std::vector<double> w = a;
      simd::KernelsFor(level).dense_axpy(w.data(), b.data(), n, alpha);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(w[i], ref_w[i])
            << simd::SimdLevelName(level) << " n=" << n << " i=" << i;
      }
    }
  }
}

// ---- f32 tolerance across tiers ------------------------------------

TEST(KernelF32ToleranceTest, SparseDotF32NearF64) {
  Rng rng(104);
  const size_t dim = 1024;
  std::vector<double> w(dim);
  for (double& v : w) v = rng.NextDouble(-2.0, 2.0);
  const simd::KernelDispatch& scalar =
      simd::KernelsFor(simd::SimdLevel::kScalar);
  for (size_t nnz : RemainderLengths()) {
    const TestRow row = MakeSortedRow(dim, nnz, &rng);
    const double ref64 =
        scalar.sparse_dot_f64(w.data(), row.indices.data(),
                              row.values.data(), nnz);
    const double ref32 =
        scalar.sparse_dot_f32(w.data(), row.indices.data(),
                              row.values_f32.data(), nnz);
    // Value narrowing: one 2^-24 relative rounding per element.
    EXPECT_NEAR(ref32, ref64,
                1e-6 * (static_cast<double>(nnz) + 1.0))
        << "nnz=" << nnz;
    for (simd::SimdLevel level : AvailableLevels()) {
      const double got = simd::KernelsFor(level).sparse_dot_f32(
          w.data(), row.indices.data(), row.values_f32.data(), nnz);
      // Cross-tier: same f32 inputs, only association/FMA rounding
      // differs (f64 accumulators), so the tiers agree very tightly.
      EXPECT_NEAR(got, ref32, 1e-10 * (std::fabs(ref32) + 1.0))
          << simd::SimdLevelName(level) << " nnz=" << nnz;
    }
  }
}

TEST(KernelF32ToleranceTest, SparseAxpyF32NearF64) {
  Rng rng(105);
  const size_t dim = 1024;
  std::vector<double> w0(dim);
  for (double& v : w0) v = rng.NextDouble(-2.0, 2.0);
  const simd::KernelDispatch& scalar =
      simd::KernelsFor(simd::SimdLevel::kScalar);
  for (size_t nnz : RemainderLengths()) {
    const TestRow row = MakeSortedRow(dim, nnz, &rng);
    const double alpha = rng.NextDouble(-1.0, 1.0);
    std::vector<double> ref = w0;
    scalar.sparse_axpy_f32(ref.data(), row.indices.data(),
                           row.values_f32.data(), nnz, alpha);
    for (simd::SimdLevel level : AvailableLevels()) {
      std::vector<double> got = w0;
      simd::KernelsFor(level).sparse_axpy_f32(
          got.data(), row.indices.data(), row.values_f32.data(), nnz,
          alpha);
      for (size_t i = 0; i < dim; ++i) {
        ASSERT_NEAR(got[i], ref[i], 1e-12)
            << simd::SimdLevelName(level) << " nnz=" << nnz << " i=" << i;
      }
    }
  }
}

// ---- CsrBlock storage invariants -----------------------------------

TEST(CsrAlignmentTest, BlockArraysAre64ByteAligned) {
  SyntheticSpec spec;
  spec.name = "simd_align";
  spec.num_instances = 64;
  spec.num_features = 200;
  spec.avg_nnz = 12;
  spec.seed = 3;
  const Dataset data = GenerateSynthetic(spec);
  const CsrBlock block = CsrBlock::FromPoints(data.points());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(block.offsets.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(block.indices.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(block.values.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(block.values_f32.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(block.labels.data()) % 64, 0u);
}

TEST(CsrAlignmentTest, FinalizeBuildsF32Copy) {
  SyntheticSpec spec;
  spec.name = "simd_f32copy";
  spec.num_instances = 32;
  spec.num_features = 100;
  spec.avg_nnz = 10;
  spec.seed = 4;
  const Dataset data = GenerateSynthetic(spec);
  const CsrBlock block = CsrBlock::FromPoints(data.points());
  ASSERT_TRUE(block.has_f32());
  ASSERT_EQ(block.values_f32.size(), block.values.size());
  for (size_t i = 0; i < block.values.size(); ++i) {
    EXPECT_EQ(block.values_f32[i], static_cast<float>(block.values[i]));
  }
}

// ---- Fused passes: f64 bit-exact per tier, f32 within budget -------

TEST(FusedKernelTest, F64FusedPassBitExactAcrossTiers) {
  SimdLevelGuard guard;
  SyntheticSpec spec;
  spec.name = "simd_fused";
  spec.num_instances = 200;
  spec.num_features = 300;
  spec.avg_nnz = 24;
  spec.seed = 9;
  const Dataset data = GenerateSynthetic(spec);
  const CsrBlock block = CsrBlock::FromPoints(data.points());
  auto loss = MakeLoss(LossKind::kLogistic);
  DenseVector w(spec.num_features);
  Rng rng(7);
  for (size_t i = 0; i < w.dim(); ++i) w[i] = rng.NextDouble(-0.5, 0.5);

  simd::SetSimdLevel(simd::SimdLevel::kScalar);
  DenseVector ref_grad(w.dim());
  double ref_loss = 0.0;
  AccumulateLossGradient(block, *loss, w, &ref_grad, &ref_loss);

  for (simd::SimdLevel level : AvailableLevels()) {
    simd::SetSimdLevel(level);
    DenseVector grad(w.dim());
    double loss_sum = 0.0;
    AccumulateLossGradient(block, *loss, w, &grad, &loss_sum);
    EXPECT_EQ(loss_sum, ref_loss) << simd::SimdLevelName(level);
    for (size_t i = 0; i < w.dim(); ++i) {
      ASSERT_EQ(grad[i], ref_grad[i])
          << simd::SimdLevelName(level) << " i=" << i;
    }
  }
}

TEST(FusedKernelTest, F32FusedPassWithinBudget) {
  SimdLevelGuard guard;
  SyntheticSpec spec;
  spec.name = "simd_fused32";
  spec.num_instances = 200;
  spec.num_features = 300;
  spec.avg_nnz = 24;
  spec.seed = 10;
  const Dataset data = GenerateSynthetic(spec);
  const CsrBlock block = CsrBlock::FromPoints(data.points());
  auto loss = MakeLoss(LossKind::kLogistic);
  DenseVector w(spec.num_features);
  Rng rng(8);
  for (size_t i = 0; i < w.dim(); ++i) w[i] = rng.NextDouble(-0.5, 0.5);

  simd::SetSimdLevel(simd::SimdLevel::kScalar);
  DenseVector ref_grad(w.dim());
  double ref_loss = 0.0;
  AccumulateLossGradient(block, *loss, w, &ref_grad, &ref_loss);

  // DESIGN §13 budget: 1e-4 relative on the fused loss and gradient
  // norm; with f64 accumulation the observed drift is far smaller.
  constexpr double kBudget = 1e-4;
  for (simd::SimdLevel level : AvailableLevels()) {
    simd::SetSimdLevel(level);
    DenseVector grad(w.dim());
    double loss_sum = 0.0;
    AccumulateLossGradientF32(block, *loss, w, &grad, &loss_sum);
    EXPECT_NEAR(loss_sum, ref_loss,
                kBudget * std::max(1.0, std::fabs(ref_loss)))
        << simd::SimdLevelName(level);
    EXPECT_NEAR(grad.Norm2(), ref_grad.Norm2(),
                kBudget * std::max(1.0, ref_grad.Norm2()))
        << simd::SimdLevelName(level);
  }
}

TEST(FusedKernelTest, SoftmaxF32FusedPassWithinBudget) {
  SimdLevelGuard guard;
  const size_t num_classes = 4;
  MulticlassSpec spec;
  spec.base.name = "simd_softmax32";
  spec.base.num_instances = 150;
  spec.base.num_features = 120;
  spec.base.avg_nnz = 16;
  spec.base.seed = 11;
  spec.num_classes = num_classes;
  const Dataset data = GenerateMulticlass(spec);
  const CsrBlock block = CsrBlock::FromPoints(data.points());
  DenseVector w(num_classes * spec.base.num_features);
  Rng rng(12);
  for (size_t i = 0; i < w.dim(); ++i) w[i] = rng.NextDouble(-0.3, 0.3);

  simd::SetSimdLevel(simd::SimdLevel::kScalar);
  DenseVector ref_grad(w.dim());
  double ref_loss = 0.0;
  AccumulateLossGradientSoftmax(block, num_classes, spec.base.num_features, w,
                                &ref_grad, &ref_loss);

  constexpr double kBudget = 1e-4;
  for (simd::SimdLevel level : AvailableLevels()) {
    simd::SetSimdLevel(level);
    DenseVector grad(w.dim());
    double loss_sum = 0.0;
    AccumulateLossGradientSoftmaxF32(block, num_classes, spec.base.num_features,
                                     w, &grad, &loss_sum);
    EXPECT_NEAR(loss_sum, ref_loss,
                kBudget * std::max(1.0, std::fabs(ref_loss)))
        << simd::SimdLevelName(level);
    EXPECT_NEAR(grad.Norm2(), ref_grad.Norm2(),
                kBudget * std::max(1.0, ref_grad.Norm2()))
        << simd::SimdLevelName(level);
  }
}

// ---- End-to-end mixed-precision training ---------------------------

Dataset TrainData() {
  SyntheticSpec spec;
  spec.name = "simd_train";
  spec.num_instances = 800;
  spec.num_features = 100;
  spec.avg_nnz = 8;
  spec.seed = 77;
  return GenerateSynthetic(spec);
}

ClusterConfig TrainCluster() {
  ClusterConfig config = ClusterConfig::Cluster1(4);
  config.straggler_sigma = 0.0;
  return config;
}

TrainerConfig TrainBaseConfig() {
  TrainerConfig config;
  config.loss = LossKind::kLogistic;
  config.base_lr = 0.5;
  config.lr_schedule = LrScheduleKind::kConstant;
  config.batch_fraction = 0.1;
  config.max_comm_steps = 12;
  config.seed = 5;
  return config;
}

class MixedPrecisionTrainTest : public testing::TestWithParam<SystemKind> {};

TEST_P(MixedPrecisionTrainTest, F32ObjectiveTracksF64) {
  const Dataset data = TrainData();
  TrainerConfig f64_config = TrainBaseConfig();
  TrainerConfig f32_config = TrainBaseConfig();
  f32_config.compute_precision = ComputePrecision::kF32;

  const TrainResult r64 =
      MakeTrainer(GetParam(), f64_config)->Train(data, TrainCluster());
  const TrainResult r32 =
      MakeTrainer(GetParam(), f32_config)->Train(data, TrainCluster());
  ASSERT_FALSE(r32.curve.empty());
  EXPECT_FALSE(r32.diverged);

  // The f32 path must still learn...
  const double initial = r32.curve.points().front().objective;
  EXPECT_LT(r32.curve.BestObjective(), initial * 0.9)
      << SystemName(GetParam());
  // ...and land near the f64 objective. Evaluation is always f64, so
  // this bound sees real precision drift, amplified by the training
  // dynamics — hence much looser than the per-pass kernel budget.
  EXPECT_NEAR(r32.curve.BestObjective(), r64.curve.BestObjective(),
              0.05 * std::fabs(r64.curve.BestObjective()))
      << SystemName(GetParam());
}

TEST_P(MixedPrecisionTrainTest, F32Deterministic) {
  const Dataset data = TrainData();
  TrainerConfig config = TrainBaseConfig();
  config.compute_precision = ComputePrecision::kF32;
  config.max_comm_steps = 5;
  const TrainResult a =
      MakeTrainer(GetParam(), config)->Train(data, TrainCluster());
  const TrainResult b =
      MakeTrainer(GetParam(), config)->Train(data, TrainCluster());
  ASSERT_EQ(a.curve.points().size(), b.curve.points().size());
  for (size_t i = 0; i < a.curve.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve.points()[i].objective,
                     b.curve.points()[i].objective);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, MixedPrecisionTrainTest,
    testing::Values(SystemKind::kMllib, SystemKind::kMllibMa,
                    SystemKind::kMllibStar, SystemKind::kPetuum,
                    SystemKind::kPetuumStar, SystemKind::kAngel,
                    SystemKind::kMllibLbfgs),
    [](const testing::TestParamInfo<SystemKind>& info) {
      std::string name = SystemName(info.param);
      for (char& c : name) {
        if (c == '*' || c == '+' || c == '-') c = '_';
      }
      if (name.back() == '_') name += "star";
      return name;
    });

}  // namespace
}  // namespace mllibstar
