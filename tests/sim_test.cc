#include "sim/sim_cluster.h"

#include <gtest/gtest.h>

#include <fstream>

#include "sim/network.h"

namespace mllibstar {
namespace {

ClusterConfig NoJitterConfig(size_t workers) {
  ClusterConfig config = ClusterConfig::Cluster1(workers);
  config.straggler_sigma = 0.0;
  return config;
}

TEST(NetworkModelTest, TransferTime) {
  NetworkModel net(0.001, 1000.0);
  EXPECT_DOUBLE_EQ(net.TransferTime(500), 0.001 + 0.5);
  EXPECT_DOUBLE_EQ(net.SerializedTransferTime(500, 4), 0.001 + 2.0);
  EXPECT_DOUBLE_EQ(net.SerializedTransferTime(500, 0), 0.0);
}

TEST(NetworkModelTest, DenseBytes) {
  EXPECT_EQ(NetworkModel::DenseBytes(1000), 8000u);
}

TEST(SimClusterTest, NodeNamesAndCounts) {
  ClusterConfig config = NoJitterConfig(3);
  config.num_servers = 2;
  SimCluster sim(config);
  EXPECT_EQ(sim.num_workers(), 3u);
  EXPECT_EQ(sim.num_servers(), 2u);
  EXPECT_EQ(sim.driver().name, "driver");
  EXPECT_EQ(sim.worker(0).name, "executor1");
  EXPECT_EQ(sim.server(1).name, "server2");
}

TEST(SimClusterTest, ComputeAdvancesClockProportionally) {
  SimCluster sim(NoJitterConfig(2));
  const double speed = sim.config().compute_speed;
  sim.Compute(&sim.worker(0), static_cast<uint64_t>(speed), "work");
  EXPECT_NEAR(sim.worker(0).clock, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(sim.worker(1).clock, 0.0);
}

TEST(SimClusterTest, BarrierAlignsEveryone) {
  SimCluster sim(NoJitterConfig(3));
  sim.Compute(&sim.worker(0), 100, "a");
  sim.Compute(&sim.worker(1), 500, "b");
  const SimTime t = sim.Barrier();
  EXPECT_DOUBLE_EQ(sim.worker(0).clock, t);
  EXPECT_DOUBLE_EQ(sim.worker(1).clock, t);
  EXPECT_DOUBLE_EQ(sim.worker(2).clock, t);
  EXPECT_DOUBLE_EQ(sim.driver().clock, t);
  EXPECT_DOUBLE_EQ(t, sim.Now());
}

TEST(SimClusterTest, BarrierRecordsWaitEvents) {
  SimCluster sim(NoJitterConfig(2));
  sim.Compute(&sim.worker(0), 1000, "long");
  sim.Barrier();
  bool saw_wait = false;
  for (const TraceEvent& e : sim.trace().events()) {
    if (e.kind == ActivityKind::kWait && e.node == "executor2") {
      saw_wait = true;
    }
  }
  EXPECT_TRUE(saw_wait);
}

TEST(SimClusterTest, JitterIsDeterministic) {
  ClusterConfig config = ClusterConfig::Cluster2(4);
  SimCluster a(config);
  SimCluster b(config);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.NextJitter(), b.NextJitter());
  }
}

TEST(SimClusterTest, ZeroSigmaMeansNoJitter) {
  SimCluster sim(NoJitterConfig(1));
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(sim.NextJitter(), 1.0);
}

TEST(SimClusterTest, Cluster2HasHighVariance) {
  SimCluster sim(ClusterConfig::Cluster2(4));
  double min_j = 1e9;
  double max_j = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double j = sim.NextJitter();
    min_j = std::min(min_j, j);
    max_j = std::max(max_j, j);
  }
  EXPECT_GT(max_j / min_j, 2.0);  // heterogeneous machines
}

TEST(TraceLogTest, RecordsAndDropsEmptyIntervals) {
  TraceLog log;
  log.Record("n", 0.0, 1.0, ActivityKind::kCompute, "x");
  log.Record("n", 1.0, 1.0, ActivityKind::kCompute, "empty");
  log.Record("n", 2.0, 1.0, ActivityKind::kCompute, "negative");
  EXPECT_EQ(log.events().size(), 1u);
  EXPECT_DOUBLE_EQ(log.EndTime(), 1.0);
}

TEST(TraceLogTest, ActivityCodes) {
  EXPECT_EQ(ActivityCode(ActivityKind::kCompute), 'C');
  EXPECT_EQ(ActivityCode(ActivityKind::kCommunicate), 'M');
  EXPECT_EQ(ActivityCode(ActivityKind::kAggregate), 'A');
  EXPECT_EQ(ActivityCode(ActivityKind::kUpdate), 'U');
  EXPECT_EQ(ActivityCode(ActivityKind::kWait), '.');
}

TEST(TraceLogTest, AsciiGanttContainsNodesAndLegend) {
  TraceLog log;
  log.Record("executor1", 0.0, 5.0, ActivityKind::kCompute, "c");
  log.Record("driver", 5.0, 10.0, ActivityKind::kUpdate, "u");
  const std::string gantt = log.RenderAscii(40);
  EXPECT_NE(gantt.find("executor1"), std::string::npos);
  EXPECT_NE(gantt.find("driver"), std::string::npos);
  EXPECT_NE(gantt.find("legend"), std::string::npos);
  EXPECT_NE(gantt.find('C'), std::string::npos);
  EXPECT_NE(gantt.find('U'), std::string::npos);
}

TEST(TraceLogTest, EmptyGanttIsEmpty) {
  TraceLog log;
  EXPECT_EQ(log.RenderAscii(40), "");
}

TEST(TraceLogTest, CsvRoundTrip) {
  TraceLog log;
  log.Record("n1", 0.5, 1.5, ActivityKind::kCommunicate, "send");
  const std::string path = testing::TempDir() + "/trace.csv";
  ASSERT_TRUE(log.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "node,start,end,kind,detail");
  EXPECT_EQ(row, "n1,0.5,1.5,M,send");
}

TEST(TraceLogTest, CsvQuotesDetailPerRfc4180) {
  TraceLog log;
  log.Record("n1", 0.0, 1.0, ActivityKind::kCompute,
             "retry 2, cause=\"timeout\"");
  const std::string path = testing::TempDir() + "/trace_quoted.csv";
  ASSERT_TRUE(log.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  // The comma-and-quote detail must come out as one quoted field with
  // doubled inner quotes, not as extra columns.
  EXPECT_EQ(row, "n1,0,1,C,\"retry 2, cause=\"\"timeout\"\"\"");
}

TEST(TraceLogTest, TinyWidthGanttDoesNotUnderflow) {
  TraceLog log;
  log.Record("n", 0.0, 1.0, ActivityKind::kCompute, "c");
  // width=4 < 8 used to underflow the size_t axis padding and attempt
  // a ~2^64-char string.
  const std::string gantt = log.RenderAscii(4);
  EXPECT_LT(gantt.size(), 1000u);
  EXPECT_NE(gantt.find("legend"), std::string::npos);
}

TEST(TraceLogTest, ActivityNames) {
  EXPECT_STREQ(ActivityName(ActivityKind::kCompute), "compute");
  EXPECT_STREQ(ActivityName(ActivityKind::kCommunicate), "communicate");
  EXPECT_STREQ(ActivityName(ActivityKind::kSpeculative), "speculative");
}

TEST(TraceLogTest, StageMarks) {
  TraceLog log;
  log.MarkStage(1.0, "s1");
  log.MarkStage(2.0, "s2");
  ASSERT_EQ(log.stages().size(), 2u);
  EXPECT_EQ(log.stages()[0].second, "s1");
  EXPECT_DOUBLE_EQ(log.stages()[1].first, 2.0);
}

TEST(SimClusterTest, NodeSpeedFactorsCycle) {
  ClusterConfig config = NoJitterConfig(4);
  config.node_speed_factors = {1.0, 0.5};
  SimCluster sim(config);
  EXPECT_DOUBLE_EQ(sim.worker(0).compute_speed, config.compute_speed);
  EXPECT_DOUBLE_EQ(sim.worker(1).compute_speed, config.compute_speed * 0.5);
  EXPECT_DOUBLE_EQ(sim.worker(2).compute_speed, config.compute_speed);
  EXPECT_DOUBLE_EQ(sim.worker(3).compute_speed, config.compute_speed * 0.5);
  // The slow node takes twice as long for the same work.
  sim.Compute(&sim.worker(0), 1000, "a");
  sim.Compute(&sim.worker(1), 1000, "b");
  EXPECT_NEAR(sim.worker(1).clock, 2.0 * sim.worker(0).clock, 1e-12);
}

TEST(SimClusterTest, NoFailuresWhenProbabilityZero) {
  SimCluster sim(NoJitterConfig(1));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(sim.NextTaskFailure());
}

TEST(SimClusterTest, FailureRateRoughlyMatchesProbability) {
  ClusterConfig config = NoJitterConfig(1);
  config.task_failure_prob = 0.2;
  SimCluster sim(config);
  int failures = 0;
  for (int i = 0; i < 5000; ++i) {
    if (sim.NextTaskFailure()) ++failures;
  }
  EXPECT_NEAR(failures / 5000.0, 0.2, 0.03);
}

TEST(ClusterConfigTest, PresetsAreSane) {
  const ClusterConfig c1 = ClusterConfig::Cluster1();
  EXPECT_EQ(c1.num_workers, 8u);
  EXPECT_GT(c1.bandwidth_bytes_per_sec, 0.0);
  const ClusterConfig c2 = ClusterConfig::Cluster2(64);
  EXPECT_EQ(c2.num_workers, 64u);
  // Cluster 2 is 10x faster network but much more heterogeneous.
  EXPECT_GT(c2.bandwidth_bytes_per_sec, c1.bandwidth_bytes_per_sec);
  EXPECT_GT(c2.straggler_sigma, c1.straggler_sigma);
}

}  // namespace
}  // namespace mllibstar
