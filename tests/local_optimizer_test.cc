#include "core/local_optimizer.h"

#include <gtest/gtest.h>

#include "core/gd.h"
#include "core/model.h"
#include "data/synthetic.h"
#include "train/trainer.h"

namespace mllibstar {
namespace {

SparseVector OneHot(FeatureIndex index, double value = 1.0) {
  SparseVector x;
  x.Push(index, value);
  return x;
}

TEST(LocalOptimizerFactoryTest, KindsAndNames) {
  LocalOptimizerConfig config;
  for (auto [kind, name] :
       {std::pair{LocalOptimizerKind::kSgd, "sgd"},
        std::pair{LocalOptimizerKind::kMomentum, "momentum"},
        std::pair{LocalOptimizerKind::kAdagrad, "adagrad"},
        std::pair{LocalOptimizerKind::kAdam, "adam"}}) {
    config.kind = kind;
    auto opt = MakeLocalOptimizer(config, 4);
    EXPECT_EQ(opt->kind(), kind);
    EXPECT_EQ(opt->name(), name);
  }
}

TEST(LocalOptimizerFactoryTest, FromName) {
  EXPECT_EQ(LocalOptimizerKindFromName("momentum"),
            LocalOptimizerKind::kMomentum);
  EXPECT_EQ(LocalOptimizerKindFromName("adagrad"),
            LocalOptimizerKind::kAdagrad);
  EXPECT_EQ(LocalOptimizerKindFromName("adam"), LocalOptimizerKind::kAdam);
  EXPECT_EQ(LocalOptimizerKindFromName("anything"),
            LocalOptimizerKind::kSgd);
}

TEST(SgdRuleTest, PlainStep) {
  auto opt = MakeLocalOptimizer({}, 3);
  DenseVector w(3);
  const uint64_t work = opt->ApplyUpdate(OneHot(1, 2.0), 0.5, 0.1, &w);
  EXPECT_DOUBLE_EQ(w[1], -0.1 * 0.5 * 2.0);
  EXPECT_EQ(work, 1u);
  // Zero derivative is free.
  EXPECT_EQ(opt->ApplyUpdate(OneHot(1), 0.0, 0.1, &w), 0u);
}

TEST(MomentumRuleTest, VelocityAccumulates) {
  LocalOptimizerConfig config;
  config.kind = LocalOptimizerKind::kMomentum;
  config.momentum = 0.5;
  auto opt = MakeLocalOptimizer(config, 2);
  DenseVector w(2);
  // Two consecutive unit-gradient updates on the same coordinate:
  // v1 = 1, v2 = 0.5*1 + 1 = 1.5; steps -lr*v.
  opt->ApplyUpdate(OneHot(0), 1.0, 0.1, &w);
  EXPECT_NEAR(w[0], -0.1, 1e-12);
  opt->ApplyUpdate(OneHot(0), 1.0, 0.1, &w);
  EXPECT_NEAR(w[0], -0.1 - 0.15, 1e-12);
}

TEST(MomentumRuleTest, LazyDecayAcrossGaps) {
  LocalOptimizerConfig config;
  config.kind = LocalOptimizerKind::kMomentum;
  config.momentum = 0.5;
  auto opt = MakeLocalOptimizer(config, 2);
  DenseVector w(2);
  opt->ApplyUpdate(OneHot(0), 1.0, 1.0, &w);  // v0 = 1
  // Two updates touching the *other* coordinate advance the step
  // counter, decaying coordinate 0's velocity by 0.5^2 when revisited.
  opt->ApplyUpdate(OneHot(1), 1.0, 1.0, &w);
  opt->ApplyUpdate(OneHot(1), 1.0, 1.0, &w);
  const double before = w[0];
  opt->ApplyUpdate(OneHot(0), 0.0, 1.0, &w);  // d=0: no touch
  EXPECT_DOUBLE_EQ(w[0], before);
  opt->ApplyUpdate(OneHot(0), 1.0, 1.0, &w);
  // Four steps elapsed since the last touch (the zero-derivative call
  // advances the step clock too): v = 1 * 0.5^4 + 1 = 1.0625.
  EXPECT_NEAR(w[0], before - 1.0625, 1e-12);
}

TEST(AdagradRuleTest, StepsShrinkWithAccumulatedGradient) {
  LocalOptimizerConfig config;
  config.kind = LocalOptimizerKind::kAdagrad;
  config.epsilon = 0.0;
  auto opt = MakeLocalOptimizer(config, 1);
  DenseVector w(1);
  opt->ApplyUpdate(OneHot(0), 1.0, 1.0, &w);
  const double first_step = -w[0];  // 1/sqrt(1) = 1
  EXPECT_NEAR(first_step, 1.0, 1e-12);
  const double before = w[0];
  opt->ApplyUpdate(OneHot(0), 1.0, 1.0, &w);
  const double second_step = before - w[0];  // 1/sqrt(2)
  EXPECT_NEAR(second_step, 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_LT(second_step, first_step);
}

TEST(AdamRuleTest, FirstStepIsLearningRateSized) {
  LocalOptimizerConfig config;
  config.kind = LocalOptimizerKind::kAdam;
  config.epsilon = 0.0;
  auto opt = MakeLocalOptimizer(config, 1);
  DenseVector w(1);
  // With bias correction, the first Adam step is exactly lr * sign(g).
  opt->ApplyUpdate(OneHot(0), 2.0, 0.01, &w);
  EXPECT_NEAR(w[0], -0.01, 1e-9);
}

TEST(AdamRuleTest, InvariantToGradientScale) {
  // Adam normalizes by the second moment: scaling all gradients by 10
  // leaves the trajectory (nearly) unchanged.
  for (double scale : {1.0, 10.0}) {
    LocalOptimizerConfig config;
    config.kind = LocalOptimizerKind::kAdam;
    auto opt = MakeLocalOptimizer(config, 1);
    DenseVector w(1);
    for (int i = 0; i < 5; ++i) {
      opt->ApplyUpdate(OneHot(0), scale, 0.1, &w);
    }
    EXPECT_NEAR(w[0], -0.5, 1e-3) << "scale=" << scale;
  }
}

// Every rule should train the separable toy problem via the epoch
// driver, including with lazy L2 weight decay.
class OptimizerEpochTest
    : public testing::TestWithParam<LocalOptimizerKind> {};

TEST_P(OptimizerEpochTest, ConvergesOnSeparableData) {
  SyntheticSpec spec;
  spec.name = "opt";
  spec.num_instances = 400;
  spec.num_features = 50;
  spec.avg_nnz = 5;
  spec.seed = 71;
  const Dataset data = GenerateSynthetic(spec);

  auto loss = MakeLoss(LossKind::kLogistic);
  auto reg = MakeRegularizer(RegularizerKind::kL2, 0.001);
  LocalOptimizerConfig config;
  config.kind = GetParam();
  auto opt = MakeLocalOptimizer(config, data.num_features());
  DenseVector w(data.num_features());
  Rng rng(5);
  for (int epoch = 0; epoch < 15; ++epoch) {
    LocalOptimizerEpoch(data.points(), *loss, *reg, 0.1, opt.get(), &rng,
                        &w);
  }
  EXPECT_GT(Accuracy(data.points(), w), 0.85)
      << MakeLocalOptimizer(config, 1)->name();
}

INSTANTIATE_TEST_SUITE_P(AllRules, OptimizerEpochTest,
                         testing::Values(LocalOptimizerKind::kSgd,
                                         LocalOptimizerKind::kMomentum,
                                         LocalOptimizerKind::kAdagrad,
                                         LocalOptimizerKind::kAdam),
                         [](const auto& info) {
                           LocalOptimizerConfig c;
                           c.kind = info.param;
                           return MakeLocalOptimizer(c, 1)->name();
                         });

TEST(OptimizerEpochTest, SgdRuleMatchesPlainSgdEpochWithoutReg) {
  SyntheticSpec spec;
  spec.name = "eq";
  spec.num_instances = 100;
  spec.num_features = 30;
  spec.avg_nnz = 4;
  spec.seed = 73;
  const Dataset data = GenerateSynthetic(spec);
  auto loss = MakeLoss(LossKind::kLogistic);
  auto reg = MakeRegularizer(RegularizerKind::kNone, 0.0);

  DenseVector w1(data.num_features());
  DenseVector w2(data.num_features());
  Rng r1(9);
  Rng r2(9);
  auto opt = MakeLocalOptimizer({}, data.num_features());
  LocalSgdEpoch(data.points(), *loss, *reg, 0.2, true, &r1, &w1);
  LocalOptimizerEpoch(data.points(), *loss, *reg, 0.2, opt.get(), &r2, &w2);
  for (size_t i = 0; i < w1.dim(); ++i) {
    EXPECT_DOUBLE_EQ(w1[i], w2[i]);
  }
}

TEST(OptimizerTrainerTest, MllibStarWithAdamTrains) {
  SyntheticSpec spec;
  spec.name = "adam-star";
  spec.num_instances = 500;
  spec.num_features = 60;
  spec.avg_nnz = 6;
  spec.seed = 77;
  const Dataset data = GenerateSynthetic(spec);
  ClusterConfig cluster = ClusterConfig::Cluster1(4);
  cluster.straggler_sigma = 0.0;

  TrainerConfig config;
  config.loss = LossKind::kLogistic;
  config.base_lr = 0.05;
  config.lr_schedule = LrScheduleKind::kConstant;
  config.max_comm_steps = 10;
  config.local_optimizer.kind = LocalOptimizerKind::kAdam;
  const TrainResult result =
      MakeTrainer(SystemKind::kMllibStar, config)->Train(data, cluster);
  EXPECT_FALSE(result.diverged);
  EXPECT_LT(result.curve.BestObjective(),
            result.curve.points().front().objective * 0.7);
}

}  // namespace
}  // namespace mllibstar
