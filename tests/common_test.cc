#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace mllibstar {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIoError,
        StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Result<int> DoubleIfPositive(int x) {
  MLLIBSTAR_RETURN_NOT_OK(FailIfNegative(x));
  return 2 * x;
}

Result<int> ChainedMacro(int x) {
  MLLIBSTAR_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, MacrosPropagateErrors) {
  EXPECT_EQ(ChainedMacro(3).value(), 7);
  EXPECT_EQ(ChainedMacro(-3).status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, SplitKeepsEmptyPieces) {
  const auto pieces = StrSplit("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
}

TEST(StringsTest, SplitEmptyString) {
  const auto pieces = StrSplit("", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "");
}

TEST(StringsTest, JoinRoundTrips) {
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ","), "x,y,z");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, TrimRemovesWhitespace) {
  EXPECT_EQ(StrTrim("  a b \t\r\n"), "a b");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim(" \t "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StrStartsWith("hello", "he"));
  EXPECT_TRUE(StrStartsWith("hello", ""));
  EXPECT_FALSE(StrStartsWith("he", "hello"));
}

TEST(StringsTest, ParseInt64Valid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(StringsTest, ParseInt64Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(StringsTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
}

TEST(StringsTest, ParseDoubleInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5junk").ok());
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2 KB");
  EXPECT_EQ(HumanBytes(uint64_t{3} * 1024 * 1024 * 1024), "3 GB");
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedDrawRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ZipfStaysInRangeAndIsSkewed) {
  Rng rng(13);
  const uint64_t n = 1000;
  int low_bucket = 0;
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    const uint64_t k = rng.NextZipf(n, 1.2);
    ASSERT_LT(k, n);
    if (k < n / 10) ++low_bucket;
  }
  // A skewed distribution puts far more than 10% of mass in the lowest
  // 10% of indices.
  EXPECT_GT(low_bucket, draws / 2);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(21);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

// ---------------------------------------------------------------- CSV

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/csv_test.csv";
  {
    auto writer = CsvWriter::Open(path, {"a", "b"});
    ASSERT_TRUE(writer.ok());
    writer->WriteRow({"1", "2"});
    writer->WriteRow({"3", "4"});
    writer->Flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
}

TEST(CsvTest, OpenFailsOnBadPath) {
  auto writer = CsvWriter::Open("/nonexistent-dir/x.csv", {"a"});
  EXPECT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitAll();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitAll();
  EXPECT_EQ(counter.load(), 1);
}

// Serving keeps one long-lived pool across many scoring waves, so the
// pool must accept work after a WaitAll round-trip (regression test:
// WaitAll is a fence, not a shutdown).
TEST(ThreadPoolTest, SubmitAfterWaitAllStillExecutes) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitAll();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

// Stress: many tiny tasks submitted concurrently from several
// producer threads (the serving pattern: request threads enqueueing
// into one shared pool). Run under ASan/UBSan in CI.
TEST(ThreadPoolTest, ManyProducersManySmallTasksStress) {
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 500;
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.WaitAll();
  EXPECT_EQ(counter.load(), kProducers * kTasksPerProducer);
}

// WaitAll from several threads at once must all unblock.
TEST(ThreadPoolTest, ConcurrentWaitAllUnblocks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&pool] { pool.WaitAll(); });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace mllibstar
