# Empty dependencies file for mllibstar_data.
# This may be replaced when dependencies are built.
