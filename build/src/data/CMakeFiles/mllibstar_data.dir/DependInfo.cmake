
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/mllibstar_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/mllibstar_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/libsvm.cc" "src/data/CMakeFiles/mllibstar_data.dir/libsvm.cc.o" "gcc" "src/data/CMakeFiles/mllibstar_data.dir/libsvm.cc.o.d"
  "/root/repo/src/data/partition.cc" "src/data/CMakeFiles/mllibstar_data.dir/partition.cc.o" "gcc" "src/data/CMakeFiles/mllibstar_data.dir/partition.cc.o.d"
  "/root/repo/src/data/split.cc" "src/data/CMakeFiles/mllibstar_data.dir/split.cc.o" "gcc" "src/data/CMakeFiles/mllibstar_data.dir/split.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/mllibstar_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/mllibstar_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mllibstar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mllibstar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
