file(REMOVE_RECURSE
  "CMakeFiles/mllibstar_data.dir/dataset.cc.o"
  "CMakeFiles/mllibstar_data.dir/dataset.cc.o.d"
  "CMakeFiles/mllibstar_data.dir/libsvm.cc.o"
  "CMakeFiles/mllibstar_data.dir/libsvm.cc.o.d"
  "CMakeFiles/mllibstar_data.dir/partition.cc.o"
  "CMakeFiles/mllibstar_data.dir/partition.cc.o.d"
  "CMakeFiles/mllibstar_data.dir/split.cc.o"
  "CMakeFiles/mllibstar_data.dir/split.cc.o.d"
  "CMakeFiles/mllibstar_data.dir/synthetic.cc.o"
  "CMakeFiles/mllibstar_data.dir/synthetic.cc.o.d"
  "libmllibstar_data.a"
  "libmllibstar_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mllibstar_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
