file(REMOVE_RECURSE
  "libmllibstar_data.a"
)
