file(REMOVE_RECURSE
  "CMakeFiles/mllibstar_ps.dir/parameter_server.cc.o"
  "CMakeFiles/mllibstar_ps.dir/parameter_server.cc.o.d"
  "libmllibstar_ps.a"
  "libmllibstar_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mllibstar_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
