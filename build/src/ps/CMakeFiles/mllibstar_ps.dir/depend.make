# Empty dependencies file for mllibstar_ps.
# This may be replaced when dependencies are built.
