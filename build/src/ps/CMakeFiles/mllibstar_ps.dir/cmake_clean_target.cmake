file(REMOVE_RECURSE
  "libmllibstar_ps.a"
)
