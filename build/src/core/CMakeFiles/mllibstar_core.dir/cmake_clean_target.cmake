file(REMOVE_RECURSE
  "libmllibstar_core.a"
)
