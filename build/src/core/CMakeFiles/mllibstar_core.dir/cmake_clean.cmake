file(REMOVE_RECURSE
  "CMakeFiles/mllibstar_core.dir/convergence.cc.o"
  "CMakeFiles/mllibstar_core.dir/convergence.cc.o.d"
  "CMakeFiles/mllibstar_core.dir/gd.cc.o"
  "CMakeFiles/mllibstar_core.dir/gd.cc.o.d"
  "CMakeFiles/mllibstar_core.dir/lbfgs.cc.o"
  "CMakeFiles/mllibstar_core.dir/lbfgs.cc.o.d"
  "CMakeFiles/mllibstar_core.dir/local_optimizer.cc.o"
  "CMakeFiles/mllibstar_core.dir/local_optimizer.cc.o.d"
  "CMakeFiles/mllibstar_core.dir/loss.cc.o"
  "CMakeFiles/mllibstar_core.dir/loss.cc.o.d"
  "CMakeFiles/mllibstar_core.dir/metrics.cc.o"
  "CMakeFiles/mllibstar_core.dir/metrics.cc.o.d"
  "CMakeFiles/mllibstar_core.dir/model.cc.o"
  "CMakeFiles/mllibstar_core.dir/model.cc.o.d"
  "CMakeFiles/mllibstar_core.dir/model_io.cc.o"
  "CMakeFiles/mllibstar_core.dir/model_io.cc.o.d"
  "CMakeFiles/mllibstar_core.dir/owlqn.cc.o"
  "CMakeFiles/mllibstar_core.dir/owlqn.cc.o.d"
  "CMakeFiles/mllibstar_core.dir/regularizer.cc.o"
  "CMakeFiles/mllibstar_core.dir/regularizer.cc.o.d"
  "CMakeFiles/mllibstar_core.dir/vector.cc.o"
  "CMakeFiles/mllibstar_core.dir/vector.cc.o.d"
  "libmllibstar_core.a"
  "libmllibstar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mllibstar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
