# Empty compiler generated dependencies file for mllibstar_core.
# This may be replaced when dependencies are built.
