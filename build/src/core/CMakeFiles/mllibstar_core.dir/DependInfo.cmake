
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/convergence.cc" "src/core/CMakeFiles/mllibstar_core.dir/convergence.cc.o" "gcc" "src/core/CMakeFiles/mllibstar_core.dir/convergence.cc.o.d"
  "/root/repo/src/core/gd.cc" "src/core/CMakeFiles/mllibstar_core.dir/gd.cc.o" "gcc" "src/core/CMakeFiles/mllibstar_core.dir/gd.cc.o.d"
  "/root/repo/src/core/lbfgs.cc" "src/core/CMakeFiles/mllibstar_core.dir/lbfgs.cc.o" "gcc" "src/core/CMakeFiles/mllibstar_core.dir/lbfgs.cc.o.d"
  "/root/repo/src/core/local_optimizer.cc" "src/core/CMakeFiles/mllibstar_core.dir/local_optimizer.cc.o" "gcc" "src/core/CMakeFiles/mllibstar_core.dir/local_optimizer.cc.o.d"
  "/root/repo/src/core/loss.cc" "src/core/CMakeFiles/mllibstar_core.dir/loss.cc.o" "gcc" "src/core/CMakeFiles/mllibstar_core.dir/loss.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/mllibstar_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/mllibstar_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/mllibstar_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/mllibstar_core.dir/model.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/mllibstar_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/mllibstar_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/owlqn.cc" "src/core/CMakeFiles/mllibstar_core.dir/owlqn.cc.o" "gcc" "src/core/CMakeFiles/mllibstar_core.dir/owlqn.cc.o.d"
  "/root/repo/src/core/regularizer.cc" "src/core/CMakeFiles/mllibstar_core.dir/regularizer.cc.o" "gcc" "src/core/CMakeFiles/mllibstar_core.dir/regularizer.cc.o.d"
  "/root/repo/src/core/vector.cc" "src/core/CMakeFiles/mllibstar_core.dir/vector.cc.o" "gcc" "src/core/CMakeFiles/mllibstar_core.dir/vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mllibstar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
