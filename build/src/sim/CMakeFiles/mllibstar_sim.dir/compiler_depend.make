# Empty compiler generated dependencies file for mllibstar_sim.
# This may be replaced when dependencies are built.
