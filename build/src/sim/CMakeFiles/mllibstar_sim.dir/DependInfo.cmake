
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster_config.cc" "src/sim/CMakeFiles/mllibstar_sim.dir/cluster_config.cc.o" "gcc" "src/sim/CMakeFiles/mllibstar_sim.dir/cluster_config.cc.o.d"
  "/root/repo/src/sim/gantt_svg.cc" "src/sim/CMakeFiles/mllibstar_sim.dir/gantt_svg.cc.o" "gcc" "src/sim/CMakeFiles/mllibstar_sim.dir/gantt_svg.cc.o.d"
  "/root/repo/src/sim/sim_cluster.cc" "src/sim/CMakeFiles/mllibstar_sim.dir/sim_cluster.cc.o" "gcc" "src/sim/CMakeFiles/mllibstar_sim.dir/sim_cluster.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/mllibstar_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/mllibstar_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/trace_summary.cc" "src/sim/CMakeFiles/mllibstar_sim.dir/trace_summary.cc.o" "gcc" "src/sim/CMakeFiles/mllibstar_sim.dir/trace_summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mllibstar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
