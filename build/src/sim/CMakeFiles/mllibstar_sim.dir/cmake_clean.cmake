file(REMOVE_RECURSE
  "CMakeFiles/mllibstar_sim.dir/cluster_config.cc.o"
  "CMakeFiles/mllibstar_sim.dir/cluster_config.cc.o.d"
  "CMakeFiles/mllibstar_sim.dir/gantt_svg.cc.o"
  "CMakeFiles/mllibstar_sim.dir/gantt_svg.cc.o.d"
  "CMakeFiles/mllibstar_sim.dir/sim_cluster.cc.o"
  "CMakeFiles/mllibstar_sim.dir/sim_cluster.cc.o.d"
  "CMakeFiles/mllibstar_sim.dir/trace.cc.o"
  "CMakeFiles/mllibstar_sim.dir/trace.cc.o.d"
  "CMakeFiles/mllibstar_sim.dir/trace_summary.cc.o"
  "CMakeFiles/mllibstar_sim.dir/trace_summary.cc.o.d"
  "libmllibstar_sim.a"
  "libmllibstar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mllibstar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
