file(REMOVE_RECURSE
  "libmllibstar_sim.a"
)
