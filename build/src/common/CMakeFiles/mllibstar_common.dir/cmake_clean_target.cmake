file(REMOVE_RECURSE
  "libmllibstar_common.a"
)
