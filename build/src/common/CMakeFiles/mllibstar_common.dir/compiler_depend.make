# Empty compiler generated dependencies file for mllibstar_common.
# This may be replaced when dependencies are built.
