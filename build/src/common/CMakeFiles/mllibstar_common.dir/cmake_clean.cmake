file(REMOVE_RECURSE
  "CMakeFiles/mllibstar_common.dir/csv.cc.o"
  "CMakeFiles/mllibstar_common.dir/csv.cc.o.d"
  "CMakeFiles/mllibstar_common.dir/flags.cc.o"
  "CMakeFiles/mllibstar_common.dir/flags.cc.o.d"
  "CMakeFiles/mllibstar_common.dir/logging.cc.o"
  "CMakeFiles/mllibstar_common.dir/logging.cc.o.d"
  "CMakeFiles/mllibstar_common.dir/random.cc.o"
  "CMakeFiles/mllibstar_common.dir/random.cc.o.d"
  "CMakeFiles/mllibstar_common.dir/status.cc.o"
  "CMakeFiles/mllibstar_common.dir/status.cc.o.d"
  "CMakeFiles/mllibstar_common.dir/strings.cc.o"
  "CMakeFiles/mllibstar_common.dir/strings.cc.o.d"
  "CMakeFiles/mllibstar_common.dir/thread_pool.cc.o"
  "CMakeFiles/mllibstar_common.dir/thread_pool.cc.o.d"
  "libmllibstar_common.a"
  "libmllibstar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mllibstar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
