file(REMOVE_RECURSE
  "CMakeFiles/mllibstar_train.dir/estimators.cc.o"
  "CMakeFiles/mllibstar_train.dir/estimators.cc.o.d"
  "CMakeFiles/mllibstar_train.dir/grid_search.cc.o"
  "CMakeFiles/mllibstar_train.dir/grid_search.cc.o.d"
  "CMakeFiles/mllibstar_train.dir/lbfgs_trainer.cc.o"
  "CMakeFiles/mllibstar_train.dir/lbfgs_trainer.cc.o.d"
  "CMakeFiles/mllibstar_train.dir/mllib_trainer.cc.o"
  "CMakeFiles/mllibstar_train.dir/mllib_trainer.cc.o.d"
  "CMakeFiles/mllibstar_train.dir/plan_optimizer.cc.o"
  "CMakeFiles/mllibstar_train.dir/plan_optimizer.cc.o.d"
  "CMakeFiles/mllibstar_train.dir/ps_trainer.cc.o"
  "CMakeFiles/mllibstar_train.dir/ps_trainer.cc.o.d"
  "CMakeFiles/mllibstar_train.dir/report.cc.o"
  "CMakeFiles/mllibstar_train.dir/report.cc.o.d"
  "CMakeFiles/mllibstar_train.dir/trainer.cc.o"
  "CMakeFiles/mllibstar_train.dir/trainer.cc.o.d"
  "CMakeFiles/mllibstar_train.dir/tuner.cc.o"
  "CMakeFiles/mllibstar_train.dir/tuner.cc.o.d"
  "libmllibstar_train.a"
  "libmllibstar_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mllibstar_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
