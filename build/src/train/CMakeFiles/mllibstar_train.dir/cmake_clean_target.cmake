file(REMOVE_RECURSE
  "libmllibstar_train.a"
)
