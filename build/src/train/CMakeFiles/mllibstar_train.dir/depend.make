# Empty dependencies file for mllibstar_train.
# This may be replaced when dependencies are built.
