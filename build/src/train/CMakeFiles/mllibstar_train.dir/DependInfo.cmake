
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/estimators.cc" "src/train/CMakeFiles/mllibstar_train.dir/estimators.cc.o" "gcc" "src/train/CMakeFiles/mllibstar_train.dir/estimators.cc.o.d"
  "/root/repo/src/train/grid_search.cc" "src/train/CMakeFiles/mllibstar_train.dir/grid_search.cc.o" "gcc" "src/train/CMakeFiles/mllibstar_train.dir/grid_search.cc.o.d"
  "/root/repo/src/train/lbfgs_trainer.cc" "src/train/CMakeFiles/mllibstar_train.dir/lbfgs_trainer.cc.o" "gcc" "src/train/CMakeFiles/mllibstar_train.dir/lbfgs_trainer.cc.o.d"
  "/root/repo/src/train/mllib_trainer.cc" "src/train/CMakeFiles/mllibstar_train.dir/mllib_trainer.cc.o" "gcc" "src/train/CMakeFiles/mllibstar_train.dir/mllib_trainer.cc.o.d"
  "/root/repo/src/train/plan_optimizer.cc" "src/train/CMakeFiles/mllibstar_train.dir/plan_optimizer.cc.o" "gcc" "src/train/CMakeFiles/mllibstar_train.dir/plan_optimizer.cc.o.d"
  "/root/repo/src/train/ps_trainer.cc" "src/train/CMakeFiles/mllibstar_train.dir/ps_trainer.cc.o" "gcc" "src/train/CMakeFiles/mllibstar_train.dir/ps_trainer.cc.o.d"
  "/root/repo/src/train/report.cc" "src/train/CMakeFiles/mllibstar_train.dir/report.cc.o" "gcc" "src/train/CMakeFiles/mllibstar_train.dir/report.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/train/CMakeFiles/mllibstar_train.dir/trainer.cc.o" "gcc" "src/train/CMakeFiles/mllibstar_train.dir/trainer.cc.o.d"
  "/root/repo/src/train/tuner.cc" "src/train/CMakeFiles/mllibstar_train.dir/tuner.cc.o" "gcc" "src/train/CMakeFiles/mllibstar_train.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mllibstar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mllibstar_data.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mllibstar_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/mllibstar_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mllibstar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mllibstar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
