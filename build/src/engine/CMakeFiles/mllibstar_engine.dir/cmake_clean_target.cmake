file(REMOVE_RECURSE
  "libmllibstar_engine.a"
)
