file(REMOVE_RECURSE
  "CMakeFiles/mllibstar_engine.dir/spark_cluster.cc.o"
  "CMakeFiles/mllibstar_engine.dir/spark_cluster.cc.o.d"
  "libmllibstar_engine.a"
  "libmllibstar_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mllibstar_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
