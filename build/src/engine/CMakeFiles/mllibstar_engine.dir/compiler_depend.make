# Empty compiler generated dependencies file for mllibstar_engine.
# This may be replaced when dependencies are built.
