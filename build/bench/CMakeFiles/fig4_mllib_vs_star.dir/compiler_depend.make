# Empty compiler generated dependencies file for fig4_mllib_vs_star.
# This may be replaced when dependencies are built.
