file(REMOVE_RECURSE
  "CMakeFiles/fig4_mllib_vs_star.dir/fig4_mllib_vs_star.cc.o"
  "CMakeFiles/fig4_mllib_vs_star.dir/fig4_mllib_vs_star.cc.o.d"
  "fig4_mllib_vs_star"
  "fig4_mllib_vs_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mllib_vs_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
