file(REMOVE_RECURSE
  "CMakeFiles/fig3_gantt.dir/fig3_gantt.cc.o"
  "CMakeFiles/fig3_gantt.dir/fig3_gantt.cc.o.d"
  "fig3_gantt"
  "fig3_gantt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
