# Empty dependencies file for fig3_gantt.
# This may be replaced when dependencies are built.
