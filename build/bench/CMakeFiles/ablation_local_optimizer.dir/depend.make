# Empty dependencies file for ablation_local_optimizer.
# This may be replaced when dependencies are built.
