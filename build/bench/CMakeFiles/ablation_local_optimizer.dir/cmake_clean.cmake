file(REMOVE_RECURSE
  "CMakeFiles/ablation_local_optimizer.dir/ablation_local_optimizer.cc.o"
  "CMakeFiles/ablation_local_optimizer.dir/ablation_local_optimizer.cc.o.d"
  "ablation_local_optimizer"
  "ablation_local_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
