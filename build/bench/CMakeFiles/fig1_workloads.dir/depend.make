# Empty dependencies file for fig1_workloads.
# This may be replaced when dependencies are built.
