file(REMOVE_RECURSE
  "CMakeFiles/ablation_comm_freq.dir/ablation_comm_freq.cc.o"
  "CMakeFiles/ablation_comm_freq.dir/ablation_comm_freq.cc.o.d"
  "ablation_comm_freq"
  "ablation_comm_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_comm_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
