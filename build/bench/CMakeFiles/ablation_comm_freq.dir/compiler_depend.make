# Empty compiler generated dependencies file for ablation_comm_freq.
# This may be replaced when dependencies are built.
