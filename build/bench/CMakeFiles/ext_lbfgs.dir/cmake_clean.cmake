file(REMOVE_RECURSE
  "CMakeFiles/ext_lbfgs.dir/ext_lbfgs.cc.o"
  "CMakeFiles/ext_lbfgs.dir/ext_lbfgs.cc.o.d"
  "ext_lbfgs"
  "ext_lbfgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lbfgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
