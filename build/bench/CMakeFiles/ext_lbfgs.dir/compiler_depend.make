# Empty compiler generated dependencies file for ext_lbfgs.
# This may be replaced when dependencies are built.
