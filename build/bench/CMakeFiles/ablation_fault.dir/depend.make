# Empty dependencies file for ablation_fault.
# This may be replaced when dependencies are built.
