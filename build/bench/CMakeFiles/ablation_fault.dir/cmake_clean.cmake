file(REMOVE_RECURSE
  "CMakeFiles/ablation_fault.dir/ablation_fault.cc.o"
  "CMakeFiles/ablation_fault.dir/ablation_fault.cc.o.d"
  "ablation_fault"
  "ablation_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
