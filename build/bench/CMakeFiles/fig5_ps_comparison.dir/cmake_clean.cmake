file(REMOVE_RECURSE
  "CMakeFiles/fig5_ps_comparison.dir/fig5_ps_comparison.cc.o"
  "CMakeFiles/fig5_ps_comparison.dir/fig5_ps_comparison.cc.o.d"
  "fig5_ps_comparison"
  "fig5_ps_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ps_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
