file(REMOVE_RECURSE
  "CMakeFiles/ablation_treeagg.dir/ablation_treeagg.cc.o"
  "CMakeFiles/ablation_treeagg.dir/ablation_treeagg.cc.o.d"
  "ablation_treeagg"
  "ablation_treeagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_treeagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
