# Empty dependencies file for ablation_treeagg.
# This may be replaced when dependencies are built.
