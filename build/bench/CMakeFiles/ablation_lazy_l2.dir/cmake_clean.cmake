file(REMOVE_RECURSE
  "CMakeFiles/ablation_lazy_l2.dir/ablation_lazy_l2.cc.o"
  "CMakeFiles/ablation_lazy_l2.dir/ablation_lazy_l2.cc.o.d"
  "ablation_lazy_l2"
  "ablation_lazy_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazy_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
