
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_lazy_l2.cc" "bench/CMakeFiles/ablation_lazy_l2.dir/ablation_lazy_l2.cc.o" "gcc" "bench/CMakeFiles/ablation_lazy_l2.dir/ablation_lazy_l2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/mllibstar_train.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mllibstar_data.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mllibstar_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/mllibstar_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mllibstar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mllibstar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mllibstar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
