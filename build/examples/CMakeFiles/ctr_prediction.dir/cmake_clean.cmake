file(REMOVE_RECURSE
  "CMakeFiles/ctr_prediction.dir/ctr_prediction.cpp.o"
  "CMakeFiles/ctr_prediction.dir/ctr_prediction.cpp.o.d"
  "ctr_prediction"
  "ctr_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctr_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
