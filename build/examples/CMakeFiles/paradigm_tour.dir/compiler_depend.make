# Empty compiler generated dependencies file for paradigm_tour.
# This may be replaced when dependencies are built.
