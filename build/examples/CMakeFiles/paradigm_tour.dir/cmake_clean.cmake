file(REMOVE_RECURSE
  "CMakeFiles/paradigm_tour.dir/paradigm_tour.cpp.o"
  "CMakeFiles/paradigm_tour.dir/paradigm_tour.cpp.o.d"
  "paradigm_tour"
  "paradigm_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradigm_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
