file(REMOVE_RECURSE
  "CMakeFiles/plan_advisor.dir/plan_advisor.cpp.o"
  "CMakeFiles/plan_advisor.dir/plan_advisor.cpp.o.d"
  "plan_advisor"
  "plan_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
