# Empty compiler generated dependencies file for plan_advisor.
# This may be replaced when dependencies are built.
