# Empty compiler generated dependencies file for mlstar_train.
# This may be replaced when dependencies are built.
