file(REMOVE_RECURSE
  "CMakeFiles/mlstar_train.dir/mlstar_train.cpp.o"
  "CMakeFiles/mlstar_train.dir/mlstar_train.cpp.o.d"
  "mlstar_train"
  "mlstar_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlstar_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
