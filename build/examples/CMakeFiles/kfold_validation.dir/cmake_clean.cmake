file(REMOVE_RECURSE
  "CMakeFiles/kfold_validation.dir/kfold_validation.cpp.o"
  "CMakeFiles/kfold_validation.dir/kfold_validation.cpp.o.d"
  "kfold_validation"
  "kfold_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfold_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
