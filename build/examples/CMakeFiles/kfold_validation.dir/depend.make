# Empty dependencies file for kfold_validation.
# This may be replaced when dependencies are built.
