file(REMOVE_RECURSE
  "CMakeFiles/rdd_mgd.dir/rdd_mgd.cpp.o"
  "CMakeFiles/rdd_mgd.dir/rdd_mgd.cpp.o.d"
  "rdd_mgd"
  "rdd_mgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_mgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
