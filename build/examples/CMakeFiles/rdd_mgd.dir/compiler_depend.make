# Empty compiler generated dependencies file for rdd_mgd.
# This may be replaced when dependencies are built.
