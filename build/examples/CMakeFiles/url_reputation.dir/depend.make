# Empty dependencies file for url_reputation.
# This may be replaced when dependencies are built.
