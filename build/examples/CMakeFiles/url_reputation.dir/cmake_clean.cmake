file(REMOVE_RECURSE
  "CMakeFiles/url_reputation.dir/url_reputation.cpp.o"
  "CMakeFiles/url_reputation.dir/url_reputation.cpp.o.d"
  "url_reputation"
  "url_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/url_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
