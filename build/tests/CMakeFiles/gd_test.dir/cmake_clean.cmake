file(REMOVE_RECURSE
  "CMakeFiles/gd_test.dir/gd_test.cc.o"
  "CMakeFiles/gd_test.dir/gd_test.cc.o.d"
  "gd_test"
  "gd_test.pdb"
  "gd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
