# Empty compiler generated dependencies file for gd_test.
# This may be replaced when dependencies are built.
