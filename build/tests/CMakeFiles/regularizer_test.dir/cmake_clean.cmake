file(REMOVE_RECURSE
  "CMakeFiles/regularizer_test.dir/regularizer_test.cc.o"
  "CMakeFiles/regularizer_test.dir/regularizer_test.cc.o.d"
  "regularizer_test"
  "regularizer_test.pdb"
  "regularizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regularizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
