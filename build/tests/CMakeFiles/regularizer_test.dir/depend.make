# Empty dependencies file for regularizer_test.
# This may be replaced when dependencies are built.
