file(REMOVE_RECURSE
  "CMakeFiles/gantt_svg_test.dir/gantt_svg_test.cc.o"
  "CMakeFiles/gantt_svg_test.dir/gantt_svg_test.cc.o.d"
  "gantt_svg_test"
  "gantt_svg_test.pdb"
  "gantt_svg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gantt_svg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
