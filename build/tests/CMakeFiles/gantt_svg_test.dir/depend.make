# Empty dependencies file for gantt_svg_test.
# This may be replaced when dependencies are built.
