# Empty dependencies file for lbfgs_test.
# This may be replaced when dependencies are built.
