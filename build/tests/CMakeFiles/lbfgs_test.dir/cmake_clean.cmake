file(REMOVE_RECURSE
  "CMakeFiles/lbfgs_test.dir/lbfgs_test.cc.o"
  "CMakeFiles/lbfgs_test.dir/lbfgs_test.cc.o.d"
  "lbfgs_test"
  "lbfgs_test.pdb"
  "lbfgs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbfgs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
