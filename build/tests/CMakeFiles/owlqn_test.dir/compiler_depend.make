# Empty compiler generated dependencies file for owlqn_test.
# This may be replaced when dependencies are built.
