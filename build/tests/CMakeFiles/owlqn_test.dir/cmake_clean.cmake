file(REMOVE_RECURSE
  "CMakeFiles/owlqn_test.dir/owlqn_test.cc.o"
  "CMakeFiles/owlqn_test.dir/owlqn_test.cc.o.d"
  "owlqn_test"
  "owlqn_test.pdb"
  "owlqn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/owlqn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
