file(REMOVE_RECURSE
  "CMakeFiles/trainer_edge_test.dir/trainer_edge_test.cc.o"
  "CMakeFiles/trainer_edge_test.dir/trainer_edge_test.cc.o.d"
  "trainer_edge_test"
  "trainer_edge_test.pdb"
  "trainer_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
