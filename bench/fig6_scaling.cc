// Figure 6: the Tencent-scale experiment. Convergence of MLlib,
// MLlib* and Angel on the WX-shaped workload over the heterogeneous
// 10 Gbps Cluster 2 with 32/64/128 machines, plus the speedup plot
// (6d) normalized to 32 machines.
//
// Paper shapes to reproduce:
//  * MLlib* converges fastest at every cluster size (6a-6c);
//  * scalability is poor for everyone: going 32 -> 128 machines gives
//    ~1.7x for MLlib*, ~1.5x for Angel, and MLlib gets *slower*
//    (communication starts to dominate; stragglers gate barriers).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "train/trainer.h"

namespace {

using namespace mllibstar;

struct SystemRun {
  SystemKind kind;
  TrainResult result;
};

std::vector<SystemRun> RunAt(const Dataset& data, size_t machines) {
  // Batch sizes are tuned once (by grid search at 32 machines) as
  // absolute counts; as machines grow, the same batch is a larger
  // fraction of each shrinking partition.
  const double batch_scale = static_cast<double>(machines) / 32.0;
  const ClusterConfig cluster = ClusterConfig::Cluster2(machines);

  TrainerConfig base;
  base.loss = LossKind::kHinge;
  base.lr_schedule = LrScheduleKind::kConstant;
  base.ps.num_shards = 4;

  std::vector<SystemRun> runs;

  TrainerConfig star_config = base;
  star_config.base_lr = 0.3;
  star_config.max_comm_steps = 10;
  runs.push_back({SystemKind::kMllibStar,
                  MakeTrainer(SystemKind::kMllibStar, star_config)
                      ->Train(data, cluster)});

  TrainerConfig angel_config = base;
  angel_config.base_lr = 0.3;
  angel_config.batch_fraction = 0.01 * batch_scale;
  angel_config.max_comm_steps = 10;
  runs.push_back({SystemKind::kAngel,
                  MakeTrainer(SystemKind::kAngel, angel_config)
                      ->Train(data, cluster)});

  TrainerConfig mllib_config = base;
  mllib_config.base_lr = 1.0;
  mllib_config.lr_schedule = LrScheduleKind::kInverseSqrt;
  mllib_config.batch_fraction = 0.01 * batch_scale;
  mllib_config.max_comm_steps = 200;
  mllib_config.eval_every = 10;
  runs.push_back({SystemKind::kMllib,
                  MakeTrainer(SystemKind::kMllib, mllib_config)
                      ->Train(data, cluster)});
  return runs;
}

}  // namespace

int main() {
  std::printf(
      "Figure 6 — WX-shaped workload on heterogeneous Cluster 2\n");
  const Dataset data = GenerateSynthetic(WxSpec());
  std::printf("workload: %zu instances x %zu features\n", data.size(),
              data.num_features());

  const size_t machine_counts[] = {32, 64, 96, 128};
  // time-per-epoch (MLlib: per-step) per system per size, for 6(d).
  std::vector<std::vector<double>> per_step(3);

  for (size_t machines : machine_counts) {
    std::printf("\n--- #machines = %zu ---\n", machines);
    const std::vector<SystemRun> runs = RunAt(data, machines);
    std::vector<ConvergenceCurve> curves;
    std::printf("  %-8s %10s %10s %14s\n", "system", "best-obj",
                "sim-time", "per-step(s)");
    for (size_t i = 0; i < runs.size(); ++i) {
      const TrainResult& r = runs[i].result;
      const double step_time = r.sim_seconds / std::max(1, r.comm_steps);
      per_step[i].push_back(step_time);
      curves.push_back(r.curve);
      std::printf("  %-8s %10.4f %10.1f %14.2f\n", r.system.c_str(),
                  r.curve.BestObjective(), r.sim_seconds, step_time);
    }
    bench::SaveCurves("fig6_machines_" + std::to_string(machines), curves);
  }

  std::printf("\nFigure 6(d) — speedup vs 32 machines "
              "(time per communication step)\n");
  std::printf("  %-8s", "system");
  for (size_t machines : machine_counts) {
    std::printf(" %7zu", machines);
  }
  std::printf("\n");
  const char* names[] = {"mllib*", "angel", "mllib"};
  for (size_t i = 0; i < 3; ++i) {
    std::printf("  %-8s", names[i]);
    for (size_t j = 0; j < per_step[i].size(); ++j) {
      std::printf(" %6.2fx", per_step[i][0] / per_step[i][j]);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: far below the 4x linear ideal at 128 machines; "
      "MLlib can even slow down as broadcast/aggregate costs grow "
      "with k and stragglers gate every barrier.\n");
  return 0;
}
