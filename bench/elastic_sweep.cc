// Elasticity sweep: training under worker churn — scripted
// leave/join/rejoin scripts plus Poisson arrival/departure rates —
// for MLlib, MLlib* and the Petuum-style PS. Churn costs virtual time
// (suspicion windows, lineage rebuilds on migrated partitions, joiner
// catch-up) but, for the Spark systems, never moves the numerics: the
// weights checksum must be identical across every churn level,
// including churn-free. The PS numerics legitimately shift with the
// contributing fleet, so its invariant is per-level reproducibility.
// Every run must still reach the churn-free target objective. Any
// violated gate exits 2.
//
// Emits a machine-readable JSON report (results/BENCH_elastic.json).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "data/synthetic.h"
#include "train/trainer.h"

namespace {

using namespace mllibstar;

/// FNV-1a over the exact bit patterns of the weights: any single-ulp
/// difference between runs changes the digest.
uint64_t WeightsChecksum(const DenseVector& w) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < w.dim(); ++i) {
    uint64_t bits = 0;
    const double v = w[i];
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

double TimeToTarget(const TrainResult& result, double target) {
  for (const auto& point : result.curve.points()) {
    if (point.objective <= target) return point.time_sec;
  }
  return -1.0;
}

/// One churn level of the sweep. "scripted" pins the acceptance
/// scenario (two leaves, two joins, one rejoin through the failure
/// detector); the Poisson levels stress steady background churn.
struct ChurnLevel {
  std::string name;
  ChurnPlan plan;
};

std::vector<ChurnLevel> SweepLevels() {
  std::vector<ChurnLevel> levels;
  levels.push_back({"none", ChurnPlan{}});

  // Two workers out, the two cold spares in, one of the departed
  // returns — all detected by a 0.25s-heartbeat / 0.5s-timeout
  // detector well inside even the fastest (PS) run.
  ChurnPlan scripted;
  scripted.heartbeat_interval_sec = 0.25;
  scripted.suspicion_timeout_sec = 0.5;
  scripted.initial_active = 6;  // workers 6 and 7 start as spares
  scripted.leaves = {{0, 1.0}, {1, 2.0}};
  scripted.joins = {{6, 3.0}, {7, 4.0}};
  scripted.rejoins = {{0, 5.0}};
  levels.push_back({"scripted", scripted});

  for (double rate : {0.05, 0.15}) {
    ChurnPlan plan;
    plan.heartbeat_interval_sec = 0.25;
    plan.suspicion_timeout_sec = 0.5;
    plan.initial_active = 6;
    plan.leave_rate_per_sec = rate;
    plan.join_rate_per_sec = rate;
    plan.min_active_workers = 4;
    char name[32];
    std::snprintf(name, sizeof(name), "poisson-%.2f", rate);
    levels.push_back({name, plan});
  }
  return levels;
}

struct SweepRow {
  std::string system;
  std::string churn;
  double sim_seconds = 0.0;
  double time_to_target = -1.0;
  double objective = 0.0;
  MembershipStats membership;
  uint64_t checksum = 0;
  bool checksum_ok = true;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "Elasticity sweep: training time and numerics under scripted and "
      "Poisson worker churn for mllib, mllib* and petuum; writes "
      "results/BENCH_elastic.json.");
  flags.AddString("dataset", "url", "synthetic dataset spec name");
  flags.AddDouble("scale", 1e-3, "synthetic dataset scale factor");
  flags.AddInt64("steps", 10, "communication steps per run");
  flags.AddString("out", "BENCH_elastic.json",
                  "JSON report filename (written under results/)");
  flags.AddBool("chrome-trace", false,
                "export a Perfetto-loadable Chrome trace per run");
  flags.AddBool("run-report", false,
                "export a unified RunReport JSON per run");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  const bool chrome_trace = flags.GetBool("chrome-trace");
  const bool run_report = flags.GetBool("run-report");
  if (chrome_trace || run_report) Telemetry::Get().set_enabled(true);

  const std::string dataset_name = flags.GetString("dataset");
  const Dataset data =
      GenerateSynthetic(SpecByName(dataset_name, flags.GetDouble("scale")));
  const int steps = static_cast<int>(flags.GetInt64("steps"));
  const std::vector<ChurnLevel> levels = SweepLevels();

  const SystemKind systems[] = {SystemKind::kMllib, SystemKind::kMllibStar,
                                SystemKind::kPetuum};

  std::printf("elastic_sweep: %s (%zu x %zu), %d steps\n",
              dataset_name.c_str(), data.size(), data.num_features(), steps);
  std::printf("%8s %14s %10s %14s %6s %6s %8s %10s %18s\n", "system", "churn",
              "sim_sec", "time_to_target", "leaves", "joins", "rejoins",
              "migrated", "weights_checksum");

  std::vector<SweepRow> rows;
  bool all_ok = true;
  bool target_reached = true;
  uint64_t total_joins = 0;
  uint64_t total_leaves = 0;
  for (SystemKind kind : systems) {
    const bool is_ps = kind == SystemKind::kPetuum;
    uint64_t reference_checksum = 0;
    double target = 0.0;
    for (size_t i = 0; i < levels.size(); ++i) {
      TrainerConfig config;
      config.loss = LossKind::kLogistic;
      config.lr_schedule = LrScheduleKind::kInverseSqrt;
      // Petuum applies the raw sum of k deltas per round, so it needs
      // a ~k-times smaller step than the averaging systems.
      config.base_lr = is_ps ? 0.04 : 0.3;
      config.max_comm_steps = steps;
      config.seed = 17;
      ClusterConfig cluster = ClusterConfig::Cluster1(8);
      cluster.straggler_sigma = 0.08;
      cluster.churn = levels[i].plan;

      // Per-run telemetry window so each exported report covers
      // exactly one (system, churn level) run.
      Telemetry::Get().Clear();
      const TrainResult result =
          MakeTrainer(kind, config)->Train(data, cluster);
      bench::ExportRunArtifacts(
          result,
          std::string("elastic_") + SystemName(kind) + "_" + levels[i].name,
          chrome_trace, run_report);

      SweepRow row;
      row.system = SystemName(kind);
      row.churn = levels[i].name;
      row.sim_seconds = result.sim_seconds;
      row.objective = result.curve.points().empty()
                          ? std::nan("")
                          : result.curve.points().back().objective;
      row.membership = result.membership;
      row.checksum = WeightsChecksum(result.final_weights);
      if (i == 0) {
        reference_checksum = row.checksum;
        // The graceful-degradation gate: every churn level must still
        // reach the churn-free objective. Spark weights are
        // churn-independent, so 0.5% slack suffices; the PS numerics
        // legitimately move with the contributing fleet (rounds
        // completed by fewer pushers take smaller aggregate steps),
        // so its gate is "within 5% of churn-free".
        target = row.objective * (is_ps ? 1.05 : 1.005);
      }
      row.time_to_target = TimeToTarget(result, target);
      if (row.time_to_target < 0.0) target_reached = false;

      if (is_ps) {
        const TrainResult repeat =
            MakeTrainer(kind, config)->Train(data, cluster);
        row.checksum_ok =
            WeightsChecksum(repeat.final_weights) == row.checksum;
      } else {
        // Spark trainers: churn costs time, never weights.
        row.checksum_ok = row.checksum == reference_checksum;
      }
      all_ok = all_ok && row.checksum_ok;
      total_joins += row.membership.joins + row.membership.rejoins;
      total_leaves += row.membership.leaves;

      std::printf(
          "%8s %14s %10.3f %14.3f %6llu %6llu %8llu %10llu %#18llx%s\n",
          row.system.c_str(), row.churn.c_str(), row.sim_seconds,
          row.time_to_target,
          static_cast<unsigned long long>(row.membership.leaves),
          static_cast<unsigned long long>(row.membership.joins),
          static_cast<unsigned long long>(row.membership.rejoins),
          static_cast<unsigned long long>(row.membership.partitions_migrated),
          static_cast<unsigned long long>(row.checksum),
          row.checksum_ok ? "" : "  MISMATCH");
      rows.push_back(row);
    }
  }

  // The scripted level really exercises the acceptance scenario.
  bool scripted_ok = true;
  for (const SweepRow& row : rows) {
    if (row.churn != "scripted") continue;
    scripted_ok = scripted_ok && row.membership.leaves >= 2 &&
                  row.membership.joins >= 2 && row.membership.rejoins >= 1;
  }
  std::printf("checksums consistent: %s\n",
              all_ok ? "yes" : "NO — determinism violated");
  std::printf("target reached everywhere: %s\n", target_reached ? "yes" : "NO");
  std::printf("scripted churn fired fully: %s\n", scripted_ok ? "yes" : "NO");

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", JsonValue::Str("elastic_sweep"));
  doc.Set("dataset", JsonValue::Str(dataset_name));
  doc.Set("comm_steps", JsonValue::Number(static_cast<int64_t>(steps)));
  doc.Set("checksums_consistent", JsonValue::Bool(all_ok));
  doc.Set("target_reached", JsonValue::Bool(target_reached));
  doc.Set("scripted_churn_complete", JsonValue::Bool(scripted_ok));
  doc.Set("total_joins", JsonValue::Number(total_joins));
  doc.Set("total_leaves", JsonValue::Number(total_leaves));
  JsonValue runs = JsonValue::Array();
  for (const SweepRow& row : rows) {
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%#llx",
                  static_cast<unsigned long long>(row.checksum));
    JsonValue entry = JsonValue::Object();
    entry.Set("system", JsonValue::Str(row.system));
    entry.Set("churn", JsonValue::Str(row.churn));
    entry.Set("sim_seconds", JsonValue::Number(row.sim_seconds));
    entry.Set("time_to_target", JsonValue::Number(row.time_to_target));
    entry.Set("objective", JsonValue::Number(row.objective));
    entry.Set("joins", JsonValue::Number(row.membership.joins));
    entry.Set("leaves", JsonValue::Number(row.membership.leaves));
    entry.Set("rejoins", JsonValue::Number(row.membership.rejoins));
    entry.Set("suspicions", JsonValue::Number(row.membership.suspicions));
    entry.Set("partitions_migrated",
              JsonValue::Number(row.membership.partitions_migrated));
    entry.Set("degraded_rounds",
              JsonValue::Number(row.membership.degraded_rounds));
    entry.Set("min_active", JsonValue::Number(row.membership.min_active));
    entry.Set("max_active", JsonValue::Number(row.membership.max_active));
    entry.Set("weights_checksum", JsonValue::Str(checksum));
    entry.Set("checksum_ok", JsonValue::Bool(row.checksum_ok));
    runs.Append(std::move(entry));
  }
  doc.Set("runs", std::move(runs));
  const std::string written =
      bench::WriteBenchJson(flags.GetString("out"), doc);
  if (written.empty()) return 1;
  return all_ok && target_reached && scripted_ok ? 0 : 2;
}
