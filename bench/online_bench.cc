// Online-loop benchmark: continuous train → hot-swap → serve over a
// drifting stream, with a latency spike injected mid-run to exercise
// SLO-aware admission control.
//
// Prints a per-round table (deployed version, staleness, shed rate,
// virtual-latency quantiles, online accuracy, A/B delta) and writes a
// machine-readable report to results/BENCH_online.json covering the
// three series the paper-style analysis wants: staleness-to-deploy,
// p50/p95/p99 under load, and accuracy-vs-drift.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "online/online_pipeline.h"

int main(int argc, char** argv) {
  using namespace mllibstar;

  FlagParser flags(
      "Online pipeline bench: drifting stream, warm-start retraining, "
      "hot-swap deploys, admission control under a latency spike; "
      "writes results/BENCH_online.json.");
  flags.AddInt64("rounds", 10, "pipeline rounds");
  flags.AddInt64("requests", 512, "scoring requests per round");
  flags.AddInt64("replicas", 4, "serving replicas");
  flags.AddInt64("deploy-every", 2,
                 "rounds between deploys (staleness accrues in between)");
  flags.AddInt64("spike-start", 4, "first round of the latency spike");
  flags.AddInt64("spike-end", 7, "one past the last spike round");
  flags.AddDouble("spike-mult", 3.0, "latency multiplier during the spike");
  flags.AddString("out", "BENCH_online.json", "report filename (in results/)");
  flags.AddBool("chrome-trace", false,
                "export a Chrome trace of the telemetry spans");
  flags.AddBool("run-report", false,
                "export a unified RunReport JSON for the pipeline run");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  const bool chrome_trace = flags.GetBool("chrome-trace");
  const bool run_report = flags.GetBool("run-report");
  if (chrome_trace || run_report) Telemetry::Get().set_enabled(true);

  OnlinePipelineConfig config;
  config.drift.base.name = "online-drift";
  config.drift.base.num_features = 4096;
  config.drift.base.avg_nnz = 12;
  config.drift.base.label_noise = 0.05;
  config.drift.segment_batches = 6;
  config.drift.rotation_angle = 0.35;
  config.drift.noise_ramp_per_segment = 0.02;

  config.rounds = static_cast<size_t>(flags.GetInt64("rounds"));
  config.batches_per_round = 2;
  config.batch_size = 96;
  config.window_batches = 8;
  config.steps_per_round = 4;
  config.deploy_every = static_cast<size_t>(flags.GetInt64("deploy-every"));
  config.requests_per_round = static_cast<size_t>(flags.GetInt64("requests"));

  config.trainer.loss = LossKind::kLogistic;
  config.trainer.base_lr = 0.4;
  config.trainer.batch_fraction = 0.5;
  config.cluster = ClusterConfig::Cluster1(4);

  config.router.num_replicas = static_cast<size_t>(flags.GetInt64("replicas"));
  config.spike.start_round = static_cast<size_t>(flags.GetInt64("spike-start"));
  config.spike.end_round = static_cast<size_t>(flags.GetInt64("spike-end"));
  config.spike.multiplier = flags.GetDouble("spike-mult");
  config.checkpoint_path = bench::ResultsDir() + "/online_bench.ckpt";
  config.collect_margins = false;

  std::printf(
      "online_bench: %zu rounds x %zu requests, %zu replicas, spike x%.1f "
      "in rounds [%zu, %zu)\n\n",
      config.rounds, config.requests_per_round, config.router.num_replicas,
      config.spike.multiplier, config.spike.start_round,
      config.spike.end_round);

  OnlinePipeline pipeline(config);
  Result<OnlineResult> run = pipeline.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const OnlineResult& result = *run;

  std::printf("%5s %4s %6s %6s %5s %6s %9s %9s %8s %9s\n", "round", "ver",
              "stale", "admit", "shed", "frac", "p50_us", "p99_us", "acc",
              "ab_delta");
  for (const RoundRecord& r : result.rounds) {
    std::printf("%5zu %4llu %6zu %6zu %5zu %6.2f %9.0f %9.0f %8.3f",
                r.round, static_cast<unsigned long long>(r.serving_version),
                r.staleness_batches, r.admitted, r.shed, r.admit_fraction,
                r.p50_virtual_us, r.p99_virtual_us, r.online_accuracy);
    if (r.has_ab) {
      std::printf(" %+9.3f", r.ab.accuracy_delta());
    } else {
      std::printf(" %9s", "-");
    }
    std::printf("%s\n", r.load_multiplier != 1.0 ? "  <spike" : "");
  }
  std::printf(
      "\n%zu deploys over %zu stream batches; %llu admitted, %llu shed\n",
      result.deploys.size(), result.final_stream_batches,
      static_cast<unsigned long long>(result.total_admitted),
      static_cast<unsigned long long>(result.total_shed));

  bench::ExportTelemetryArtifacts(result.system, /*sim_seconds=*/0.0,
                                  /*total_bytes=*/0, "online_bench",
                                  chrome_trace, run_report);

  JsonValue report = BuildOnlineReport(config, result);
  report.Set("bench", JsonValue::Str("online_bench"));
  const std::string path =
      bench::WriteBenchJson(flags.GetString("out"), report);
  if (path.empty()) return 1;

  // The report must survive a parse round trip (CI validates the file
  // with an external parser; catch malformed output here first).
  const Result<JsonValue> parsed = JsonValue::Parse(report.Dump(2));
  if (!parsed.ok() || parsed->Find("deploys") == nullptr ||
      parsed->Find("deploys")->size() == 0) {
    std::fprintf(stderr, "BENCH_online.json failed validation\n");
    return 2;
  }
  return 0;
}
