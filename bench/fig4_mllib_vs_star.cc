// Figure 4: MLlib vs MLlib* on four datasets, with and without L2
// regularization. As in the paper (§V-A), hyperparameters are tuned
// per workload by grid search; we then regenerate both series
// (objective vs #communication steps, objective vs simulated time)
// and report the step/time speedups at 0.01 accuracy loss.
//
// Paper shapes to reproduce:
//  * MLlib* needs orders of magnitude fewer communication steps;
//  * the time speedup exceeds the step speedup on high-dimensional
//    data (AllReduce removes the driver bottleneck — kdd12: 80x steps
//    but 240x time);
//  * without L2, MLlib fails to reach the optimum on the
//    underdetermined datasets (url, kddb) within the step budget;
//  * with L2 = 0.1 the problem is better conditioned and the gap
//    narrows (paper: avazu 7x, kdd12 21x).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "train/grid_search.h"
#include "train/trainer.h"

namespace {

using namespace mllibstar;

void RunSubfigure(const char* dataset, double lambda) {
  const Dataset data = GenerateSynthetic(SpecByName(dataset));
  const ClusterConfig cluster = ClusterConfig::Cluster1(8);

  TrainerConfig base;
  base.loss = LossKind::kHinge;
  base.regularizer =
      lambda > 0 ? RegularizerKind::kL2 : RegularizerKind::kNone;
  base.lambda = lambda;
  base.lr_schedule = LrScheduleKind::kInverseSqrt;

  // Tune and run MLlib*.
  GridSearchSpec star_grid;
  star_grid.learning_rates = {0.1, 0.3, 1.0};
  star_grid.batch_fractions = {0.01};  // unused by MLlib*
  star_grid.trial_comm_steps = 10;
  TrainerConfig star_config = base;
  star_config.max_comm_steps = 40;
  star_config =
      GridSearch(SystemKind::kMllibStar, star_config, star_grid, data,
                 cluster)
          .best_config;
  const TrainResult star =
      MakeTrainer(SystemKind::kMllibStar, star_config)->Train(data, cluster);

  // Tune and run MLlib. Without regularization the SendGradient
  // paradigm needs thousands of steps, so the grid trials must be long
  // enough to rank learning rates by long-run progress; with L2 the
  // problem is strongly convex and short trials suffice.
  GridSearchSpec mllib_grid;
  mllib_grid.learning_rates = lambda > 0
                                  ? std::vector<double>{1.0, 4.0, 16.0}
                                  : std::vector<double>{16.0, 64.0, 256.0,
                                                        512.0};
  mllib_grid.batch_fractions = {0.01, 0.1};
  mllib_grid.trial_comm_steps = lambda > 0 ? 150 : 1000;
  TrainerConfig mllib_config = base;
  mllib_config.eval_every = lambda > 0 ? 10 : 50;
  // The paper reports MLlib needing 80-200x more steps than MLlib*'s
  // ~30; give it room to actually converge on the determined datasets.
  mllib_config.max_comm_steps = lambda > 0 ? 600 : 8000;
  mllib_config =
      GridSearch(SystemKind::kMllib, mllib_config, mllib_grid, data, cluster)
          .best_config;
  mllib_config.target_objective = star.curve.BestObjective() + 0.005;
  const TrainResult mllib =
      MakeTrainer(SystemKind::kMllib, mllib_config)->Train(data, cluster);

  const double target = TargetObjective({star.curve, mllib.curve}, 0.01);
  std::printf("\n--- %s, L2=%.2g ---\n", dataset, lambda);
  std::printf("  tuned: mllib lr=%.1f batch=%.0f%%; mllib* lr=%.1f\n",
              mllib_config.base_lr, mllib_config.batch_fraction * 100,
              star_config.base_lr);
  std::printf("  target objective (optimum+0.01):   %8.4f\n", target);
  std::printf("  mllib : best %.4f after %d steps / %.1fs\n",
              mllib.curve.BestObjective(), mllib.comm_steps,
              mllib.sim_seconds);
  std::printf("  mllib*: best %.4f after %d steps / %.1fs\n",
              star.curve.BestObjective(), star.comm_steps,
              star.sim_seconds);
  bench::PrintSpeedup("speedup in communication steps:",
                      StepSpeedupAtTarget(mllib.curve, star.curve, target));
  bench::PrintSpeedup("speedup in time:",
                      SpeedupAtTarget(mllib.curve, star.curve, target));
  bench::SaveCurves(std::string("fig4_") + dataset + "_l2_" +
                        (lambda > 0 ? "0.1" : "0"),
                    {mllib.curve, star.curve});
}

}  // namespace

int main() {
  std::printf(
      "Figure 4 — MLlib vs MLlib*, SVM, 8 executors (Cluster 1), "
      "grid-searched hyperparameters\n");
  for (const char* dataset : {"avazu", "url", "kddb", "kdd12"}) {
    RunSubfigure(dataset, /*lambda=*/0.0);  // Figures 4(b)(d)(f)(h)
    RunSubfigure(dataset, /*lambda=*/0.1);  // Figures 4(a)(c)(e)(g)
  }
  return 0;
}
