// Serving throughput: batched multi-threaded scoring vs one-at-a-time
// requests, swept over batch size × thread count.
//
// Prints a throughput table (requests/sec) and writes the series to
// results/serve_bench.csv plus a machine-readable summary to
// results/BENCH_serve.json. The single-request row (batch=1,
// threads=1) is the baseline every batched configuration is compared
// against.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/json.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/model.h"
#include "serve/batch_scorer.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"

namespace mllibstar {
namespace {

constexpr size_t kDim = 1 << 20;        // 1M features (avazu-scale)
constexpr size_t kNnzPerRequest = 200;  // wide crossed-feature rows
constexpr size_t kNumRequests = 100000;

std::vector<SparseVector> MakeRequests() {
  Rng rng(/*seed=*/20260805);
  std::vector<SparseVector> requests(kNumRequests);
  for (auto& r : requests) {
    FeatureIndex index = 0;
    for (size_t k = 0; k < kNnzPerRequest; ++k) {
      index += static_cast<FeatureIndex>(
          rng.NextUint64(kDim / kNnzPerRequest - 1) + 1);
      if (index >= kDim) break;
      r.Push(index, 1.0);
    }
  }
  return requests;
}

GlmModel MakeModel() {
  Rng rng(/*seed=*/7);
  GlmModel model(kDim);
  for (size_t i = 0; i < kDim; ++i) {
    (*model.mutable_weights())[i] = rng.NextGaussian();
  }
  return model;
}

/// Scores all requests in batches of `batch_size` on `threads` workers
/// and returns throughput in requests/sec. Per-request latencies land
/// in `metrics` (reset per configuration).
double RunConfig(const ModelRegistry& registry,
                 const std::vector<SparseVector>& requests, size_t batch_size,
                 size_t threads, ServeMetrics* metrics) {
  metrics->Reset();
  BatchScorerConfig config;
  config.max_batch_size = batch_size;
  config.max_wait_ms = 0.0;  // deterministic: size-triggered flush only
  config.num_threads = threads;
  config.chunk_size = 64;
  BatchScorer scorer(&registry, config, metrics);

  Stopwatch watch;
  if (batch_size == 1) {
    for (const SparseVector& r : requests) {
      if (!scorer.Score(r).ok()) return 0.0;
    }
  } else {
    for (size_t i = 0; i < requests.size(); i += batch_size) {
      const size_t n = std::min(batch_size, requests.size() - i);
      if (!scorer.ScoreBatch(requests.data() + i, n).ok()) return 0.0;
    }
  }
  return static_cast<double>(requests.size()) / watch.ElapsedSeconds();
}

}  // namespace
}  // namespace mllibstar

int main() {
  using namespace mllibstar;

  std::printf(
      "serve_bench: %zu requests, dim=%zu, ~%zu nnz/request, "
      "%u hardware threads\n\n",
      kNumRequests, kDim, kNnzPerRequest,
      std::thread::hardware_concurrency());

  ModelRegistry registry;
  registry.Deploy(MakeModel(), "bench");
  const std::vector<SparseVector> requests = MakeRequests();

  const std::vector<size_t> batch_sizes = {1, 8, 64, 256, 1024};
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  auto csv = CsvWriter::Open(bench::ResultsDir() + "/serve_bench.csv",
                             {"batch_size", "threads", "requests_per_sec",
                              "p50_us", "p95_us", "p99_us"});

  std::printf("%-12s", "batch\\thr");
  for (size_t t : thread_counts) std::printf("%12zu", t);
  std::printf("\n");

  ServeMetrics metrics;
  double baseline = 0.0;
  double best = 0.0;
  size_t best_batch = 0, best_threads = 0;
  ServeMetricsSnapshot baseline_snap, best_snap;
  JsonValue runs = JsonValue::Array();
  for (size_t b : batch_sizes) {
    std::printf("%-12zu", b);
    for (size_t t : thread_counts) {
      const double rps = RunConfig(registry, requests, b, t, &metrics);
      const ServeMetricsSnapshot snap = metrics.Snapshot();
      {
        JsonValue row = JsonValue::Object();
        row.Set("batch_size", JsonValue::Number(static_cast<uint64_t>(b)));
        row.Set("threads", JsonValue::Number(static_cast<uint64_t>(t)));
        row.Set("requests_per_sec", JsonValue::Number(rps));
        row.Set("p50_us", JsonValue::Number(snap.p50_us));
        row.Set("p95_us", JsonValue::Number(snap.p95_us));
        row.Set("p99_us", JsonValue::Number(snap.p99_us));
        runs.Append(row);
      }
      if (b == 1 && t == 1) {
        baseline = rps;
        baseline_snap = snap;
      }
      if (rps > best) {
        best = rps;
        best_batch = b;
        best_threads = t;
        best_snap = snap;
      }
      std::printf("%12.0f", rps);
      if (csv.ok()) {
        csv->WriteRow({std::to_string(b), std::to_string(t),
                       std::to_string(rps), std::to_string(snap.p50_us),
                       std::to_string(snap.p95_us),
                       std::to_string(snap.p99_us)});
      }
    }
    std::printf("\n");
  }
  if (csv.ok()) {
    csv->Flush();
    std::printf("\n  [series written to %s/serve_bench.csv]\n",
                bench::ResultsDir().c_str());
  }

  {
    JsonValue report = JsonValue::Object();
    report.Set("bench", JsonValue::Str("serve_bench"));
    report.Set("dim", JsonValue::Number(static_cast<uint64_t>(kDim)));
    report.Set("nnz_per_request",
               JsonValue::Number(static_cast<uint64_t>(kNnzPerRequest)));
    report.Set("num_requests",
               JsonValue::Number(static_cast<uint64_t>(kNumRequests)));
    report.Set("runs", runs);
    report.Set("baseline_requests_per_sec", JsonValue::Number(baseline));
    JsonValue top = JsonValue::Object();
    top.Set("batch_size", JsonValue::Number(static_cast<uint64_t>(best_batch)));
    top.Set("threads", JsonValue::Number(static_cast<uint64_t>(best_threads)));
    top.Set("requests_per_sec", JsonValue::Number(best));
    top.Set("speedup",
            JsonValue::Number(baseline > 0.0 ? best / baseline : 0.0));
    report.Set("best", top);
    bench::WriteBenchJson("BENCH_serve.json", report);
  }

  std::printf(
      "\nbaseline (batch=1, threads=1): %.0f req/s  "
      "p50/p95/p99 = %.0f/%.0f/%.0f us\n"
      "best (batch=%zu, threads=%zu):  %.0f req/s  (%.1fx)  "
      "p50/p95/p99 = %.0f/%.0f/%.0f us\n",
      baseline, baseline_snap.p50_us, baseline_snap.p95_us,
      baseline_snap.p99_us, best_batch, best_threads, best,
      baseline > 0.0 ? best / baseline : 0.0, best_snap.p50_us,
      best_snap.p95_us, best_snap.p99_us);
  if (best <= baseline) {
    std::printf("WARNING: batching did not beat single-request scoring\n");
    return 1;
  }
  return 0;
}
