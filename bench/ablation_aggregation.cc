// Ablation: model summation vs model averaging (Petuum vs Petuum*).
// Zhang & Jordan [15]: summation can diverge, but when it converges
// it can converge faster. Sweep the learning rate and watch where the
// summation variant falls over while averaging stays stable.
#include <cstdio>

#include "data/synthetic.h"
#include "train/trainer.h"

int main() {
  using namespace mllibstar;

  SyntheticSpec spec = AvazuSpec(3e-4);
  const Dataset data = GenerateSynthetic(spec);
  const ClusterConfig cluster = ClusterConfig::Cluster1(8);

  std::printf(
      "Ablation — model summation (petuum) vs model averaging "
      "(petuum*)\n\n");
  std::printf("%-8s %22s %22s\n", "lr", "summation final-obj",
              "averaging final-obj");

  for (double lr : {0.005, 0.02, 0.08, 0.32}) {
    TrainerConfig config;
    config.loss = LossKind::kLogistic;
    config.base_lr = lr;
    config.lr_schedule = LrScheduleKind::kConstant;
    config.batch_fraction = 0.2;
    config.max_comm_steps = 30;

    const TrainResult sum =
        MakeTrainer(SystemKind::kPetuum, config)->Train(data, cluster);
    const TrainResult avg =
        MakeTrainer(SystemKind::kPetuumStar, config)->Train(data, cluster);

    char sum_buf[32];
    if (sum.diverged) {
      std::snprintf(sum_buf, sizeof(sum_buf), "DIVERGED");
    } else {
      std::snprintf(sum_buf, sizeof(sum_buf), "%.4f",
                    sum.curve.FinalObjective());
    }
    std::printf("%-8.3f %22s %22.4f\n", lr, sum_buf,
                avg.curve.FinalObjective());
  }
  std::printf(
      "\nExpected shape: summation multiplies the effective step by the "
      "worker count — competitive at small lr, divergent as lr grows; "
      "averaging remains stable throughout.\n");
  return 0;
}
