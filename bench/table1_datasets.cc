// Table I: dataset statistics. Regenerates the paper's table for the
// synthetic equivalents (1/1000 scale; paper-scale numbers shown for
// reference).
#include <cstdio>

#include "common/strings.h"
#include "data/synthetic.h"

int main() {
  using namespace mllibstar;

  struct PaperRow {
    const char* name;
    uint64_t instances;
    uint64_t features;
    const char* size;
  };
  const PaperRow paper[] = {
      {"avazu", 40428967, 1000000, "7.4GB"},
      {"url", 2396130, 3231961, "2.1GB"},
      {"kddb", 19264097, 29890095, "4.8GB"},
      {"kdd12", 149639105, 54686452, "21GB"},
      {"wx", 231937380, 51121518, "434GB"},
  };

  std::printf("TABLE I — dataset statistics (synthetic, 1/1000 scale)\n\n");
  std::printf("%-8s %12s %12s %10s %8s %15s %16s\n", "dataset",
              "#instances", "#features", "size", "nnz/row", "shape",
              "paper(#inst/#feat)");
  for (const PaperRow& row : paper) {
    const Dataset ds = GenerateSynthetic(SpecByName(row.name));
    const DatasetStats stats = ds.Stats();
    std::printf("%-8s %12zu %12zu %10s %8.1f %15s %10llu/%llu\n",
                stats.name.c_str(), stats.num_instances, stats.num_features,
                HumanBytes(stats.approx_bytes).c_str(),
                stats.avg_nnz_per_row,
                stats.underdetermined ? "underdetermined" : "determined",
                static_cast<unsigned long long>(row.instances),
                static_cast<unsigned long long>(row.features));
  }
  std::printf(
      "\nShape properties preserved from the paper: avazu/kdd12/wx are "
      "determined (n >> d), url/kddb are underdetermined (d > n).\n");
  return 0;
}
