// Figure 1: ML workloads on the Tencent Machine Learning Platform.
// Observational data from the paper's introduction — the motivation
// for the whole study: 80%+ of data is prepared in Spark, yet only 3%
// of ML jobs use MLlib, so nearly every pipeline pays a data-movement
// tax into a specialized system.
#include <cstdio>

int main() {
  struct Share {
    const char* system;
    int percent;
  };
  const Share shares[] = {
      {"Angel", 51},
      {"XGBoost", 24},
      {"TensorFlow", 22},
      {"MLlib", 3},
  };
  std::printf(
      "Figure 1 — ML workloads in the Tencent Machine Learning "
      "Platform (paper, observational)\n\n");
  for (const Share& share : shares) {
    std::printf("  %-12s %3d%%  |", share.system, share.percent);
    for (int i = 0; i < share.percent; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf(
      "\nReading: >80%% of data is extracted/transformed with Spark, "
      "but only 3%% of ML training uses MLlib — users move data out of "
      "Spark because MLlib is believed to be slow. The rest of this "
      "repository reproduces the paper's demonstration that the "
      "slowness is an implementation artifact, fixable with model "
      "averaging + AllReduce (see fig3..fig6 benches).\n");
  return 0;
}
