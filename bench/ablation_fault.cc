// Ablation: fault tolerance under task failures. Spark re-executes a
// failed task from its cached partition (lineage recovery); under BSP
// every retry extends the whole stage, so the slowdown grows faster
// than the failure rate — another face of the straggler problem in
// Figure 6's discussion. Emits results/BENCH_ablation_fault.json.
#include <cstdio>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "train/trainer.h"

int main() {
  using namespace mllibstar;

  const Dataset data = GenerateSynthetic(Kdd12Spec(3e-4));

  std::printf(
      "Ablation — task failure rate vs training time (MLlib*, 8 "
      "executors, lineage recovery)\n\n");
  std::printf("%-14s %12s %12s %12s\n", "failure-prob", "sim-time(s)",
              "slowdown", "best-obj");

  JsonValue runs = JsonValue::Array();
  double baseline = 0.0;
  for (double prob : {0.0, 0.01, 0.05, 0.15}) {
    ClusterConfig cluster = ClusterConfig::Cluster1(8);
    cluster.task_failure_prob = prob;
    cluster.task_restart_seconds = 1.0;

    TrainerConfig config;
    config.loss = LossKind::kHinge;
    config.base_lr = 0.2;
    config.lr_schedule = LrScheduleKind::kConstant;
    config.max_comm_steps = 10;
    const TrainResult result =
        MakeTrainer(SystemKind::kMllibStar, config)->Train(data, cluster);
    if (prob == 0.0) baseline = result.sim_seconds;
    std::printf("%-14.2f %12.2f %11.2fx %12.4f\n", prob,
                result.sim_seconds, result.sim_seconds / baseline,
                result.curve.BestObjective());

    JsonValue entry = JsonValue::Object();
    entry.Set("failure_prob", JsonValue::Number(prob));
    entry.Set("sim_seconds", JsonValue::Number(result.sim_seconds));
    entry.Set("slowdown", JsonValue::Number(result.sim_seconds / baseline));
    entry.Set("best_objective", JsonValue::Number(result.curve.BestObjective()));
    runs.Append(std::move(entry));
  }
  std::printf(
      "\nExpected shape: identical objectives (retries recompute the "
      "same result) with superlinear time growth — each stage runs at "
      "the pace of its unluckiest worker.\n");

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", JsonValue::Str("ablation_fault"));
  doc.Set("system", JsonValue::Str("mllib*"));
  doc.Set("runs", std::move(runs));
  bench::WriteBenchJson("BENCH_ablation_fault.json", doc);
  return 0;
}
