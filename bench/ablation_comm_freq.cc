// Ablation: communication frequency on the parameter server — the
// Petuum-vs-Angel axis (§III-B). Per-batch communication (small batch
// fraction, one step per batch) sends often and updates the global
// model in tiny increments; per-epoch communication does a full local
// pass before talking. Sweep the batch fraction for both strategies.
#include <cstdio>

#include "data/synthetic.h"
#include "train/trainer.h"

int main() {
  using namespace mllibstar;

  const Dataset data = GenerateSynthetic(AvazuSpec(3e-4));
  const ClusterConfig cluster = ClusterConfig::Cluster1(8);

  std::printf(
      "Ablation — PS communication frequency (L2=0.1 so each Petuum "
      "step is one batch-GD update)\n\n");
  std::printf("%-10s %-12s %10s %12s %14s\n", "system", "batch-frac",
              "best-obj", "sim-time(s)", "bytes/update");

  for (double fraction : {0.01, 0.05, 0.2}) {
    TrainerConfig base;
    base.loss = LossKind::kHinge;
    base.regularizer = RegularizerKind::kL2;
    base.lambda = 0.1;
    base.base_lr = 0.3;
    base.lr_schedule = LrScheduleKind::kConstant;
    base.batch_fraction = fraction;

    // Petuum-style: one batch per communication step. Budget the same
    // number of local updates (~2 epochs worth) for both systems.
    TrainerConfig petuum_config = base;
    petuum_config.max_comm_steps =
        static_cast<int>(2.0 / fraction);
    petuum_config.eval_every = 5;
    const TrainResult petuum = MakeTrainer(SystemKind::kPetuumStar,
                                           petuum_config)
                                   ->Train(data, cluster);

    // Angel-style: a whole epoch of batches per communication step.
    TrainerConfig angel_config = base;
    angel_config.max_comm_steps = 2;
    const TrainResult angel =
        MakeTrainer(SystemKind::kAngel, angel_config)->Train(data, cluster);

    for (const TrainResult* r : {&petuum, &angel}) {
      std::printf("%-10s %-12.2f %10.4f %12.2f %14.0f\n", r->system.c_str(),
                  fraction, r->curve.BestObjective(), r->sim_seconds,
                  static_cast<double>(r->total_bytes) /
                      std::max<uint64_t>(1, r->total_model_updates));
    }
  }
  std::printf(
      "\nExpected shape: with a nonzero regularizer, per-batch "
      "communication pays a full pull+push per single update — Angel's "
      "per-epoch strategy amortizes the traffic over ~1/fraction "
      "updates and wins in time (paper Figure 5e-5h discussion).\n");
  return 0;
}
