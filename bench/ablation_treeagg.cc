// Ablation: treeAggregate fan-in. MLlib shifts aggregation load off
// the driver through intermediate aggregators; this sweep shows how
// the per-step latency of the driver-centric pattern depends on the
// aggregator count, and why none of it matches AllReduce.
#include <cstdio>

#include "engine/spark_cluster.h"
#include "sim/network.h"

int main() {
  using namespace mllibstar;

  const size_t k = 16;
  const size_t model_dim = 54686;  // kdd12-shaped
  const uint64_t bytes = NetworkModel::DenseBytes(model_dim);

  std::printf(
      "Ablation — treeAggregate aggregator count (k=%zu executors, "
      "%.2f MB model)\n\n",
      k, static_cast<double>(bytes) / 1e6);
  std::printf("%-14s %16s\n", "aggregators", "step latency(s)");

  ClusterConfig config = ClusterConfig::Cluster1(k);
  config.straggler_sigma = 0.0;

  for (size_t aggs : {1, 2, 4, 8, 16}) {
    SparkCluster spark(config);
    spark.Broadcast(bytes, BroadcastMode::kDriverSequential, "bcast");
    spark.TreeAggregate(bytes, aggs, model_dim, "agg");
    std::printf("%-14zu %16.2f\n", aggs, spark.Barrier());
  }

  // The AllReduce alternative for reference.
  SparkCluster allreduce(config);
  const uint64_t piece = NetworkModel::DenseBytes((model_dim + k - 1) / k);
  allreduce.ShuffleAllToAll(piece, "rs");
  allreduce.ShuffleAllToAll(piece, "ag");
  std::printf("%-14s %16.2f\n", "allreduce", allreduce.Barrier());
  std::printf(
      "\nExpected shape: more aggregators help the driver-centric "
      "pattern, with diminishing returns; the two-phase shuffle beats "
      "every setting because no single link carries k payloads.\n");
  return 0;
}
