// Ablation (extension): which local update rule should the SendModel
// workers run? The paper uses plain SGD; adaptive rules (momentum,
// Adagrad, Adam) interact with model averaging differently — each
// worker's optimizer state is local and never averaged.
#include <cstdio>

#include "data/synthetic.h"
#include "train/trainer.h"

int main() {
  using namespace mllibstar;

  const Dataset data = GenerateSynthetic(AvazuSpec(3e-4));
  const ClusterConfig cluster = ClusterConfig::Cluster1(8);

  std::printf(
      "Ablation — local update rule inside MLlib* (logistic, 8 "
      "workers)\n\n");
  std::printf("%-10s %8s %12s %12s %12s\n", "rule", "lr", "best-obj",
              "obj@5", "sim-time(s)");

  const struct {
    LocalOptimizerKind kind;
    const char* name;
    double lr;
  } rules[] = {
      {LocalOptimizerKind::kSgd, "sgd", 0.3},
      {LocalOptimizerKind::kMomentum, "momentum", 0.05},
      {LocalOptimizerKind::kAdagrad, "adagrad", 0.3},
      {LocalOptimizerKind::kAdam, "adam", 0.03},
  };
  for (const auto& rule : rules) {
    TrainerConfig config;
    config.loss = LossKind::kLogistic;
    config.base_lr = rule.lr;
    config.lr_schedule = LrScheduleKind::kConstant;
    config.max_comm_steps = 15;
    config.local_optimizer.kind = rule.kind;
    const TrainResult result =
        MakeTrainer(SystemKind::kMllibStar, config)->Train(data, cluster);
    double at5 = result.curve.points().back().objective;
    for (const ConvergencePoint& p : result.curve.points()) {
      if (p.comm_step == 5) at5 = p.objective;
    }
    std::printf("%-10s %8.2f %12.4f %12.4f %12.2f\n", rule.name, rule.lr,
                result.curve.BestObjective(), at5, result.sim_seconds);
  }
  std::printf(
      "\nExpected shape: all rules converge under averaging; adaptive "
      "rules trade per-update cost for steadier early progress. The "
      "paper's plain SGD remains a strong default — consistent with "
      "its claim that the win comes from the communication pattern, "
      "not the local rule.\n");
  return 0;
}
