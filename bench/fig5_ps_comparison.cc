// Figure 5: MLlib* vs parameter servers (Petuum*, Angel), with MLlib
// as the reference, on four datasets with and without L2. As in the
// paper (§V-A), every system's hyperparameters are grid-searched per
// workload (including SSP staleness for the PS systems).
//
// Paper shapes to reproduce:
//  * Petuum* and Angel are far faster than MLlib;
//  * MLlib* is comparable to or better than both when L2 = 0 (all of
//    them run parallel SGD + model averaging in some form);
//  * with L2 != 0, MLlib* wins clearly — its lazy sparse updates pack
//    many more updates per communication step — and Angel beats
//    Petuum* (per-epoch vs per-batch communication when every Petuum
//    step buys only one expensive batch-GD update).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "data/synthetic.h"
#include "train/grid_search.h"
#include "train/trainer.h"

namespace {

using namespace mllibstar;

TrainResult TunedRun(SystemKind kind, const TrainerConfig& base,
                     const GridSearchSpec& grid, const Dataset& data,
                     const ClusterConfig& cluster,
                     std::optional<double> stop_at = std::nullopt) {
  TrainerConfig best = GridSearch(kind, base, grid, data, cluster).best_config;
  best.target_objective = stop_at;
  return MakeTrainer(kind, best)->Train(data, cluster);
}

void RunSubfigure(const char* dataset, double lambda) {
  const Dataset data = GenerateSynthetic(SpecByName(dataset));
  const ClusterConfig cluster = ClusterConfig::Cluster1(8);
  const bool regularized = lambda > 0;

  TrainerConfig base;
  base.loss = LossKind::kHinge;
  base.regularizer =
      regularized ? RegularizerKind::kL2 : RegularizerKind::kNone;
  base.lambda = lambda;
  base.lr_schedule = LrScheduleKind::kInverseSqrt;
  base.ps.num_shards = 2;

  // MLlib*.
  GridSearchSpec star_grid;
  star_grid.learning_rates = {0.1, 0.3, 1.0};
  star_grid.batch_fractions = {0.01};  // unused
  star_grid.trial_comm_steps = 10;
  TrainerConfig star_base = base;
  star_base.max_comm_steps = 40;
  const TrainResult star =
      TunedRun(SystemKind::kMllibStar, star_base, star_grid, data, cluster);
  const double stop_at = star.curve.BestObjective() + 0.005;

  // Petuum*: per-batch communication; SSP staleness is tuned too.
  GridSearchSpec petuum_grid;
  petuum_grid.learning_rates = {0.1, 0.3, 1.0};
  petuum_grid.batch_fractions = {0.05, 0.2};
  petuum_grid.stalenesses = {0, 2};
  petuum_grid.trial_comm_steps = 60;
  TrainerConfig petuum_base = base;
  petuum_base.max_comm_steps = regularized ? 600 : 1200;
  petuum_base.eval_every = 10;
  const TrainResult petuum =
      TunedRun(SystemKind::kPetuumStar, petuum_base, petuum_grid, data,
               cluster, stop_at);

  // Angel: per-epoch communication.
  GridSearchSpec angel_grid;
  angel_grid.learning_rates = {0.1, 0.3, 1.0};
  angel_grid.batch_fractions = {0.01, 0.05};
  angel_grid.trial_comm_steps = 5;
  TrainerConfig angel_base = base;
  angel_base.max_comm_steps = 40;
  const TrainResult angel = TunedRun(SystemKind::kAngel, angel_base,
                                     angel_grid, data, cluster, stop_at);

  // MLlib reference.
  GridSearchSpec mllib_grid;
  mllib_grid.learning_rates =
      regularized ? std::vector<double>{1.0, 4.0, 16.0}
                  : std::vector<double>{16.0, 64.0, 256.0};
  mllib_grid.batch_fractions = {0.01, 0.1};
  mllib_grid.trial_comm_steps = regularized ? 150 : 500;
  TrainerConfig mllib_base = base;
  mllib_base.max_comm_steps = regularized ? 600 : 4000;
  mllib_base.eval_every = regularized ? 10 : 25;
  const TrainResult mllib = TunedRun(SystemKind::kMllib, mllib_base,
                                     mllib_grid, data, cluster, stop_at);

  const std::vector<ConvergenceCurve> curves = {
      mllib.curve, angel.curve, petuum.curve, star.curve};
  const double target = TargetObjective(curves, 0.01);

  std::printf("\n--- %s, L2=%.2g (target objective %.4f) ---\n", dataset,
              lambda, target);
  std::printf("  %-9s %10s %12s %12s\n", "system", "best-obj",
              "steps->tgt", "time->tgt(s)");
  for (const TrainResult* r : {&mllib, &angel, &petuum, &star}) {
    const auto steps = r->curve.StepsToReach(target);
    const auto time = r->curve.TimeToReach(target);
    std::printf("  %-9s %10.4f %12s %12s\n", r->system.c_str(),
                r->curve.BestObjective(),
                steps ? std::to_string(*steps).c_str() : "n/a",
                time ? FormatDouble(*time, 4).c_str() : "n/a");
  }
  std::string stem = std::string("fig5_") + dataset + "_l2_" +
                     (lambda > 0 ? "0.1" : "0");
  bench::SaveCurves(stem, curves);
}

}  // namespace

int main() {
  std::printf(
      "Figure 5 — MLlib* vs parameter servers, SVM, 8 executors + "
      "2 PS shards, grid-searched hyperparameters\n");
  for (const char* dataset : {"avazu", "url", "kddb", "kdd12"}) {
    RunSubfigure(dataset, /*lambda=*/0.0);
    RunSubfigure(dataset, /*lambda=*/0.1);
  }
  return 0;
}
