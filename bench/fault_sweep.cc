// Robustness sweep: time-to-target-objective as a function of the
// executor crash rate, for MLlib, MLlib* and the Petuum-style PS.
// Crashes cost recovery time (restart + lineage recompute) but never
// perturb the Spark trainers' numerics, so the sweep doubles as a
// determinism check: for the Spark systems the weights checksum must
// be identical across every crash rate, and for the PS the same rate
// run twice must reproduce the same checksum. Any mismatch exits
// non-zero.
//
// Emits a machine-readable JSON report (default BENCH_faults.json).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "data/synthetic.h"
#include "train/trainer.h"

namespace {

using namespace mllibstar;

/// FNV-1a over the exact bit patterns of the weights: any single-ulp
/// difference between runs changes the digest.
uint64_t WeightsChecksum(const DenseVector& w) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < w.dim(); ++i) {
    uint64_t bits = 0;
    const double v = w[i];
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::vector<double> ParseRates(const std::string& text) {
  std::vector<double> values;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) values.push_back(std::stod(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return values;
}

/// First virtual time at which the run's evaluated objective reached
/// `target`; negative when it never did.
double TimeToTarget(const TrainResult& result, double target) {
  for (const auto& point : result.curve.points()) {
    if (point.objective <= target) return point.time_sec;
  }
  return -1.0;
}

struct SweepRow {
  std::string system;
  double crash_rate = 0.0;
  double sim_seconds = 0.0;
  double time_to_target = -1.0;
  double objective = 0.0;
  uint64_t checksum = 0;
  uint64_t worker_crashes = 0;
  uint64_t lineage_recomputes = 0;
  bool checksum_ok = true;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "Fault sweep: time-to-target objective vs executor crash rate for "
      "mllib, mllib* and petuum; writes BENCH_faults.json.");
  flags.AddString("dataset", "url", "synthetic dataset spec name");
  flags.AddDouble("scale", 1e-3, "synthetic dataset scale factor");
  flags.AddInt64("steps", 10, "communication steps per run");
  flags.AddString("rates", "0,0.02,0.05,0.1",
                  "worker crash probabilities to sweep");
  flags.AddString("out", "BENCH_faults.json",
                  "JSON report filename (written under results/)");
  flags.AddBool("chrome-trace", false,
                "export a Perfetto-loadable Chrome trace per run");
  flags.AddBool("run-report", false,
                "export a unified RunReport JSON per run");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  const bool chrome_trace = flags.GetBool("chrome-trace");
  const bool run_report = flags.GetBool("run-report");
  if (chrome_trace || run_report) Telemetry::Get().set_enabled(true);

  const std::string dataset_name = flags.GetString("dataset");
  const Dataset data =
      GenerateSynthetic(SpecByName(dataset_name, flags.GetDouble("scale")));
  const std::vector<double> rates = ParseRates(flags.GetString("rates"));
  const int steps = static_cast<int>(flags.GetInt64("steps"));

  const SystemKind systems[] = {SystemKind::kMllib, SystemKind::kMllibStar,
                                SystemKind::kPetuum};

  std::printf("fault_sweep: %s (%zu x %zu), %d steps\n", dataset_name.c_str(),
              data.size(), data.num_features(), steps);
  std::printf("%8s %12s %10s %14s %10s %8s %18s\n", "system", "crash_rate",
              "sim_sec", "time_to_target", "crashes", "rebuilds",
              "weights_checksum");

  std::vector<SweepRow> rows;
  bool all_ok = true;
  for (SystemKind kind : systems) {
    const bool is_ps = kind == SystemKind::kPetuum;
    uint64_t reference_checksum = 0;
    double target = 0.0;
    for (size_t i = 0; i < rates.size(); ++i) {
      TrainerConfig config;
      config.loss = LossKind::kLogistic;
      config.lr_schedule = LrScheduleKind::kInverseSqrt;
      // Petuum applies the raw sum of k deltas per round, so it needs
      // a ~k-times smaller step than the averaging systems.
      config.base_lr = is_ps ? 0.04 : 0.3;
      config.max_comm_steps = steps;
      config.seed = 17;
      ClusterConfig cluster = ClusterConfig::Cluster1(8);
      cluster.straggler_sigma = 0.08;
      cluster.faults.worker_crash_prob = rates[i];
      cluster.faults.executor_restart_seconds = 2.0;

      Telemetry::Get().Clear();
      const TrainResult result =
          MakeTrainer(kind, config)->Train(data, cluster);
      {
        char stem[64];
        std::snprintf(stem, sizeof(stem), "faults_%s_rate%.3f",
                      SystemName(kind).c_str(), rates[i]);
        bench::ExportRunArtifacts(result, stem, chrome_trace, run_report);
      }

      SweepRow row;
      row.system = SystemName(kind);
      row.crash_rate = rates[i];
      row.sim_seconds = result.sim_seconds;
      row.objective = result.curve.points().empty()
                          ? std::nan("")
                          : result.curve.points().back().objective;
      row.checksum = WeightsChecksum(result.final_weights);
      row.worker_crashes = result.faults.worker_crashes;
      row.lineage_recomputes = result.faults.lineage_recomputes;
      if (i == 0) {
        reference_checksum = row.checksum;
        // Crash-free final objective, with a little slack so the PS
        // runs (whose numerics legitimately move under faults) still
        // register a crossing time.
        target = row.objective * 1.005;
      }
      row.time_to_target = TimeToTarget(result, target);

      if (is_ps) {
        // PS numerics may change with the crash rate (event order
        // shifts); the invariant is per-rate reproducibility.
        const TrainResult repeat =
            MakeTrainer(kind, config)->Train(data, cluster);
        row.checksum_ok =
            WeightsChecksum(repeat.final_weights) == row.checksum;
      } else {
        // Spark trainers: crashes cost time, never weights.
        row.checksum_ok = row.checksum == reference_checksum;
      }
      all_ok = all_ok && row.checksum_ok;

      std::printf("%8s %12.3f %10.3f %14.3f %10llu %8llu %#18llx%s\n",
                  row.system.c_str(), row.crash_rate, row.sim_seconds,
                  row.time_to_target,
                  static_cast<unsigned long long>(row.worker_crashes),
                  static_cast<unsigned long long>(row.lineage_recomputes),
                  static_cast<unsigned long long>(row.checksum),
                  row.checksum_ok ? "" : "  MISMATCH");
      rows.push_back(row);
    }
  }
  std::printf("checksums consistent: %s\n",
              all_ok ? "yes" : "NO — determinism violated");

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", JsonValue::Str("fault_sweep"));
  doc.Set("dataset", JsonValue::Str(dataset_name));
  doc.Set("comm_steps", JsonValue::Number(static_cast<int64_t>(steps)));
  doc.Set("checksums_consistent", JsonValue::Bool(all_ok));
  JsonValue runs = JsonValue::Array();
  for (const SweepRow& row : rows) {
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%#llx",
                  static_cast<unsigned long long>(row.checksum));
    JsonValue entry = JsonValue::Object();
    entry.Set("system", JsonValue::Str(row.system));
    entry.Set("crash_rate", JsonValue::Number(row.crash_rate));
    entry.Set("sim_seconds", JsonValue::Number(row.sim_seconds));
    entry.Set("time_to_target", JsonValue::Number(row.time_to_target));
    entry.Set("objective", JsonValue::Number(row.objective));
    entry.Set("worker_crashes", JsonValue::Number(row.worker_crashes));
    entry.Set("lineage_recomputes", JsonValue::Number(row.lineage_recomputes));
    entry.Set("weights_checksum", JsonValue::Str(checksum));
    entry.Set("checksum_ok", JsonValue::Bool(row.checksum_ok));
    runs.Append(std::move(entry));
  }
  doc.Set("runs", std::move(runs));
  const std::string written =
      bench::WriteBenchJson(flags.GetString("out"), doc);
  if (written.empty()) return 1;
  return all_ok ? 0 : 2;
}
