// Extension (paper §VII): does the MLlib* recipe matter once spark.ml
// replaces GD with L-BFGS? Compares spark.ml-style distributed L-BFGS
// (one full cluster pass per function evaluation, driver-centric
// aggregation) against MLlib GD and MLlib* on smooth logistic
// objectives.
#include <cstdio>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "train/trainer.h"

int main() {
  using namespace mllibstar;

  std::printf(
      "Extension — L-BFGS (spark.ml) vs GD (MLlib) vs MLlib*, logistic "
      "loss, L2=0.01, 8 executors\n");

  for (const char* dataset : {"avazu", "kdd12"}) {
    const Dataset data = GenerateSynthetic(SpecByName(dataset));
    const ClusterConfig cluster = ClusterConfig::Cluster1(8);

    TrainerConfig base;
    base.loss = LossKind::kLogistic;
    base.regularizer = RegularizerKind::kL2;
    base.lambda = 0.01;

    TrainerConfig lbfgs_config = base;
    lbfgs_config.max_comm_steps = 25;
    const TrainResult lbfgs = MakeTrainer(SystemKind::kMllibLbfgs,
                                          lbfgs_config)
                                  ->Train(data, cluster);

    TrainerConfig gd_config = base;
    gd_config.base_lr = 4.0;
    gd_config.lr_schedule = LrScheduleKind::kInverseSqrt;
    gd_config.batch_fraction = 0.1;
    gd_config.max_comm_steps = 400;
    gd_config.eval_every = 5;
    const TrainResult gd =
        MakeTrainer(SystemKind::kMllib, gd_config)->Train(data, cluster);

    TrainerConfig star_config = base;
    star_config.base_lr = 0.1;
    star_config.lr_schedule = LrScheduleKind::kInverseSqrt;
    star_config.max_comm_steps = 25;
    const TrainResult star = MakeTrainer(SystemKind::kMllibStar,
                                         star_config)
                                 ->Train(data, cluster);

    const std::vector<ConvergenceCurve> curves = {gd.curve, lbfgs.curve,
                                                  star.curve};
    const double target = TargetObjective(curves, 0.01);
    std::printf("\n--- %s (target %.4f) ---\n", dataset, target);
    std::printf("  %-12s %10s %14s %14s\n", "system", "best-obj",
                "passes->tgt", "time->tgt(s)");
    for (const TrainResult* r : {&gd, &lbfgs, &star}) {
      const auto steps = r->curve.StepsToReach(target);
      const auto time = r->curve.TimeToReach(target);
      std::printf("  %-12s %10.4f %14s %14s\n", r->system.c_str(),
                  r->curve.BestObjective(),
                  steps ? std::to_string(*steps).c_str() : "n/a",
                  time ? std::to_string(*time).c_str() : "n/a");
    }
    bench::SaveCurves(std::string("ext_lbfgs_") + dataset, curves);
  }
  std::printf(
      "\nExpected shape: L-BFGS needs far fewer passes than batch GD "
      "(curvature), but every pass is a full broadcast + treeAggregate "
      "through the driver, so MLlib*'s cheap steps keep it competitive "
      "or ahead in wall-clock — the techniques are complementary, as "
      "the paper conjectures in Section VII.\n");
  return 0;
}
