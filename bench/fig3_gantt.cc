// Figure 3: gantt charts of MGD execution in (a) MLlib, (b) MLlib +
// model averaging, and (c) MLlib*, on a kdd12-shaped SVM workload
// with 8 executors (the paper's Cluster 1 setup).
//
// Expected shapes (paper §IV-A):
//  (a) the driver and the intermediate aggregators are busy while
//      everyone else waits (bottlenecks B1 and B2);
//  (b) same communication pattern, similar per-step timing;
//  (c) all executors busy almost all the time, no driver.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "sim/gantt_svg.h"
#include "data/synthetic.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace mllibstar;

  FlagParser flags(
      "Figure 3: gantt charts of MGD execution in MLlib, MLlib+MA and "
      "MLlib* on a kdd12-shaped SVM workload with 8 executors.");
  flags.AddDouble("scale", 3e-4, "synthetic dataset scale factor");
  flags.AddInt64("steps", 3, "communication steps per run");
  flags.AddBool("chrome-trace", false,
                "export a Perfetto-loadable Chrome trace per variant");
  flags.AddBool("run-report", false,
                "export a unified RunReport JSON per variant");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  const bool chrome_trace = flags.GetBool("chrome-trace");
  const bool run_report = flags.GetBool("run-report");
  if (chrome_trace || run_report) Telemetry::Get().set_enabled(true);

  const Dataset data =
      GenerateSynthetic(Kdd12Spec(flags.GetDouble("scale")));
  const ClusterConfig cluster = ClusterConfig::Cluster1(8);
  std::printf("Figure 3 — gantt charts, kdd12-shaped SVM, 8 executors\n");
  std::printf("workload: %zu x %zu\n", data.size(), data.num_features());

  TrainerConfig config;
  config.loss = LossKind::kHinge;
  config.base_lr = 0.2;
  config.lr_schedule = LrScheduleKind::kConstant;
  config.batch_fraction = 0.01;
  config.max_comm_steps = static_cast<int>(flags.GetInt64("steps"));

  const struct {
    SystemKind kind;
    const char* caption;
  } variants[] = {
      {SystemKind::kMllib, "(a) MLlib (SendGradient + treeAggregate)"},
      {SystemKind::kMllibMa, "(b) MLlib + model averaging"},
      {SystemKind::kMllibStar, "(c) MLlib* (Reduce-Scatter + AllGather)"},
  };

  for (const auto& variant : variants) {
    // Per-variant telemetry window so each report's metric series
    // covers exactly one run.
    Telemetry::Get().Clear();
    const TrainResult result =
        MakeTrainer(variant.kind, config)->Train(data, cluster);
    std::printf("\n%s — %d steps in %.1f simulated seconds\n",
                variant.caption, result.comm_steps, result.sim_seconds);
    std::printf("%s", result.trace.RenderAscii(96).c_str());
    const std::string stem =
        std::string("fig3_trace_") + SystemName(variant.kind);
    const std::string safe = bench::SanitizeStem(stem);
    const Status st =
        result.trace.WriteCsv(bench::ResultsDir() + "/" + safe + ".csv");
    if (st.ok()) {
      std::printf("  [trace written to results/%s.csv]\n", safe.c_str());
    }
    GanttSvgOptions svg_options;
    svg_options.title = variant.caption;
    const Status svg_st = WriteGanttSvg(
        result.trace, bench::ResultsDir() + "/" + safe + ".svg",
        svg_options);
    if (svg_st.ok()) {
      std::printf("  [gantt written to results/%s.svg]\n", safe.c_str());
    }
    bench::ExportRunArtifacts(result, stem, chrome_trace, run_report);
  }
  return 0;
}
