// Ablation: SSP staleness bound on the heterogeneous cluster.
// Staleness trades blocked time (stragglers gate BSP barriers) for
// update quality (stale reads). Sweep s on Cluster 2's jittery nodes.
#include <cstdio>

#include "data/synthetic.h"
#include "train/trainer.h"

int main() {
  using namespace mllibstar;

  // Compute-heavy rounds (big batches on the full-scale synthetic
  // avazu) on the jittery Cluster 2: this is where BSP pays the
  // sum-of-per-round-maxima straggler tax that SSP amortizes.
  const Dataset data = GenerateSynthetic(AvazuSpec());
  ClusterConfig cluster = ClusterConfig::Cluster2(8);
  cluster.straggler_sigma = 0.5;

  std::printf(
      "Ablation — SSP staleness (petuum*, heterogeneous Cluster 2)\n\n");
  std::printf("%-10s %12s %12s %12s\n", "staleness", "best-obj",
              "sim-time(s)", "wait-time(s)");

  for (int staleness : {0, 1, 2, 4, 8}) {
    TrainerConfig config;
    config.loss = LossKind::kLogistic;
    config.base_lr = 0.3;
    config.lr_schedule = LrScheduleKind::kConstant;
    config.batch_fraction = 0.5;
    config.max_comm_steps = 40;
    config.eval_every = 5;
    config.ps.consistency =
        staleness == 0 ? ConsistencyKind::kBsp : ConsistencyKind::kSsp;
    config.ps.staleness = staleness;

    const TrainResult result =
        MakeTrainer(SystemKind::kPetuumStar, config)->Train(data, cluster);

    double wait = 0.0;
    for (const TraceEvent& e : result.trace.events()) {
      if (e.kind == ActivityKind::kWait) wait += e.end - e.start;
    }
    std::printf("%-10d %12.4f %12.2f %12.2f\n", staleness,
                result.curve.BestObjective(), result.sim_seconds, wait);
  }
  std::printf(
      "\nExpected shape: blocked time and total time drop monotonically "
      "with the staleness bound, while the reached objective degrades "
      "as reads get staler — mild at s=1, visible by s=4. Picking s is "
      "the time-vs-quality tradeoff the paper tunes by grid search.\n");
  return 0;
}
