// Simulator self-profiling harness: how fast does the discrete-event
// engine itself run, and what does recording cost? Sweeps
// representative configs (mllib, mllib*, petuum) x host_threads {1, 8}
// and, for each combo, trains once with telemetry off (the checksum
// baseline) and once with full recording on (windowed series, round
// profiles, EngineProfiler).
//
// Gates (any violation exits 2):
//  - recording invisibility: the weights checksum with telemetry on
//    must equal the telemetry-off baseline, per combo;
//  - host-thread determinism: the checksum must match across
//    host_threads values for the same system;
//  - throughput: simulator events per wall second >= --min-events-per-sec;
//  - overhead: host microseconds per simulated second <=
//    --max-host-us-per-sim-sec.
//
// Writes results/BENCH_sim_profile.json with the per-combo trajectory
// (events/sec, host-us-per-sim-second, subsystem attribution) so the
// numbers are tracked across commits.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "data/synthetic.h"
#include "obs/engine_profiler.h"
#include "train/trainer.h"

namespace {

using namespace mllibstar;

/// FNV-1a over the exact bit patterns of the weights: any single-ulp
/// difference between runs changes the digest.
uint64_t WeightsChecksum(const DenseVector& w) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < w.dim(); ++i) {
    uint64_t bits = 0;
    const double v = w[i];
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

struct ProfileRow {
  std::string system;
  size_t host_threads = 0;
  double sim_seconds = 0.0;
  double wall_off_sec = 0.0;  ///< telemetry disabled
  double wall_on_sec = 0.0;   ///< full recording
  uint64_t events = 0;        ///< EngineProfiler event count (recording run)
  double events_per_sec = 0.0;
  double host_us_per_sim_sec = 0.0;
  uint64_t checksum = 0;      ///< telemetry-off baseline
  bool checksum_ok = true;    ///< recording on == recording off
  std::vector<SubsystemStats> subsystems;
};

double WallSeconds(std::chrono::steady_clock::time_point t0,
                   std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "Simulator self-profile: events/sec and host-us-per-sim-second for "
      "mllib, mllib* and petuum across host_threads, with recording "
      "on/off bit-identity gates; writes results/BENCH_sim_profile.json.");
  flags.AddString("dataset", "url", "synthetic dataset spec name");
  flags.AddDouble("scale", 1e-3, "synthetic dataset scale factor");
  flags.AddInt64("steps", 8, "communication steps per run");
  flags.AddDouble("min-events-per-sec", 1000.0,
                  "throughput gate: simulator events per wall second");
  flags.AddDouble("max-host-us-per-sim-sec", 1e8,
                  "overhead gate: host microseconds per simulated second");
  flags.AddString("out", "BENCH_sim_profile.json",
                  "JSON report filename (written under results/)");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  const std::string dataset_name = flags.GetString("dataset");
  const Dataset data =
      GenerateSynthetic(SpecByName(dataset_name, flags.GetDouble("scale")));
  const int steps = static_cast<int>(flags.GetInt64("steps"));
  const double min_events_per_sec = flags.GetDouble("min-events-per-sec");
  const double max_host_us = flags.GetDouble("max-host-us-per-sim-sec");

  const SystemKind systems[] = {SystemKind::kMllib, SystemKind::kMllibStar,
                                SystemKind::kPetuum};
  const size_t thread_levels[] = {1, 8};

  std::printf("sim_profile: %s (%zu x %zu), %d steps\n", dataset_name.c_str(),
              data.size(), data.num_features(), steps);
  std::printf("%8s %8s %10s %10s %10s %12s %14s %6s\n", "system", "threads",
              "sim_sec", "wall_off", "wall_on", "events/sec", "host_us/sim_s",
              "ident");

  std::vector<ProfileRow> rows;
  bool identity_ok = true;
  bool thread_ok = true;
  bool throughput_ok = true;
  bool overhead_ok = true;
  for (SystemKind kind : systems) {
    uint64_t thread_reference = 0;
    bool have_reference = false;
    for (size_t threads : thread_levels) {
      TrainerConfig config;
      config.loss = LossKind::kLogistic;
      config.lr_schedule = LrScheduleKind::kInverseSqrt;
      config.base_lr = kind == SystemKind::kPetuum ? 0.04 : 0.3;
      config.max_comm_steps = steps;
      config.seed = 17;
      config.host_threads = threads;
      ClusterConfig cluster = ClusterConfig::Cluster1(8);
      cluster.straggler_sigma = 0.08;

      ProfileRow row;
      row.system = SystemName(kind);
      row.host_threads = threads;

      // Baseline: recording fully off.
      Telemetry::Get().Clear();
      Telemetry::Get().set_enabled(false);
      const auto off0 = std::chrono::steady_clock::now();
      const TrainResult off = MakeTrainer(kind, config)->Train(data, cluster);
      row.wall_off_sec = WallSeconds(off0, std::chrono::steady_clock::now());
      row.checksum = WeightsChecksum(off.final_weights);

      // Recording run: series, round profiles, profiler all live.
      Telemetry::Get().Clear();
      Telemetry::Get().set_enabled(true);
      const auto on0 = std::chrono::steady_clock::now();
      const TrainResult on = MakeTrainer(kind, config)->Train(data, cluster);
      row.wall_on_sec = WallSeconds(on0, std::chrono::steady_clock::now());
      row.sim_seconds = on.sim_seconds;
      row.events = EngineProfiler::Get().TotalEvents();
      row.subsystems = EngineProfiler::Get().Snapshot();
      Telemetry::Get().set_enabled(false);

      row.checksum_ok = WeightsChecksum(on.final_weights) == row.checksum;
      identity_ok = identity_ok && row.checksum_ok;
      if (!have_reference) {
        thread_reference = row.checksum;
        have_reference = true;
      } else {
        thread_ok = thread_ok && row.checksum == thread_reference;
      }

      row.events_per_sec =
          row.wall_on_sec > 0.0
              ? static_cast<double>(row.events) / row.wall_on_sec
              : 0.0;
      row.host_us_per_sim_sec =
          row.sim_seconds > 0.0 ? row.wall_on_sec * 1e6 / row.sim_seconds
                                : 0.0;
      throughput_ok = throughput_ok && row.events_per_sec >= min_events_per_sec;
      overhead_ok = overhead_ok && row.host_us_per_sim_sec <= max_host_us;

      std::printf("%8s %8zu %10.3f %10.3f %10.3f %12.0f %14.0f %6s\n",
                  row.system.c_str(), row.host_threads, row.sim_seconds,
                  row.wall_off_sec, row.wall_on_sec, row.events_per_sec,
                  row.host_us_per_sim_sec,
                  row.checksum_ok ? "yes" : "NO");
      rows.push_back(std::move(row));
    }
  }

  std::printf("recording invisible (on == off): %s\n",
              identity_ok ? "yes" : "NO — recording perturbed the numerics");
  std::printf("host-thread determinism: %s\n",
              thread_ok ? "yes" : "NO — checksum moved with host_threads");
  std::printf("throughput gate (>= %.0f events/sec): %s\n", min_events_per_sec,
              throughput_ok ? "pass" : "FAIL");
  std::printf("overhead gate (<= %.0f host_us/sim_sec): %s\n", max_host_us,
              overhead_ok ? "pass" : "FAIL");

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", JsonValue::Str("sim_profile"));
  doc.Set("dataset", JsonValue::Str(dataset_name));
  doc.Set("comm_steps", JsonValue::Number(static_cast<int64_t>(steps)));
  doc.Set("min_events_per_sec", JsonValue::Number(min_events_per_sec));
  doc.Set("max_host_us_per_sim_sec", JsonValue::Number(max_host_us));
  doc.Set("recording_invisible", JsonValue::Bool(identity_ok));
  doc.Set("host_thread_deterministic", JsonValue::Bool(thread_ok));
  doc.Set("throughput_ok", JsonValue::Bool(throughput_ok));
  doc.Set("overhead_ok", JsonValue::Bool(overhead_ok));
  JsonValue runs = JsonValue::Array();
  for (const ProfileRow& row : rows) {
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%#llx",
                  static_cast<unsigned long long>(row.checksum));
    JsonValue entry = JsonValue::Object();
    entry.Set("system", JsonValue::Str(row.system));
    entry.Set("host_threads",
              JsonValue::Number(static_cast<uint64_t>(row.host_threads)));
    entry.Set("sim_seconds", JsonValue::Number(row.sim_seconds));
    entry.Set("wall_off_sec", JsonValue::Number(row.wall_off_sec));
    entry.Set("wall_on_sec", JsonValue::Number(row.wall_on_sec));
    entry.Set("events", JsonValue::Number(row.events));
    entry.Set("events_per_sec", JsonValue::Number(row.events_per_sec));
    entry.Set("host_us_per_sim_sec",
              JsonValue::Number(row.host_us_per_sim_sec));
    entry.Set("weights_checksum", JsonValue::Str(checksum));
    entry.Set("checksum_ok", JsonValue::Bool(row.checksum_ok));
    JsonValue subsystems = JsonValue::Object();
    for (const SubsystemStats& s : row.subsystems) {
      JsonValue sub = JsonValue::Object();
      sub.Set("host_us", JsonValue::Number(s.host_us));
      sub.Set("events", JsonValue::Number(s.events));
      subsystems.Set(s.name, std::move(sub));
    }
    entry.Set("subsystems", std::move(subsystems));
    runs.Append(std::move(entry));
  }
  doc.Set("runs", std::move(runs));
  const std::string written =
      bench::WriteBenchJson(flags.GetString("out"), doc);
  if (written.empty()) return 1;
  return identity_ok && thread_ok && throughput_ok && overhead_ok ? 0 : 2;
}
