// Ablation: communication codecs — how many bytes does a
// communication step actually need? Every path a model or gradient
// takes (broadcast, treeAggregate, Reduce-Scatter/AllGather, PS
// push/pull) runs through a src/comm codec, so this sweep measures the
// real tradeoff: bytes moved and simulated time versus the objective
// the decoded-value math actually reaches. Error feedback (EF) carries
// each worker's compression error into its next round's message, which
// is what keeps the lossy codecs honest.
#include <cmath>
#include <cstdio>

#include "comm/codec.h"
#include "data/synthetic.h"
#include "train/trainer.h"

int main() {
  using namespace mllibstar;

  struct CodecRow {
    const char* label;
    CodecConfig codec;
  };
  const CodecRow codecs[] = {
      {"dense-f64", {CodecKind::kDenseF64, 1024, 0.01, true}},
      {"dense-f32", {CodecKind::kDenseF32, 1024, 0.01, true}},
      {"int16+ef", {CodecKind::kInt16Linear, 1024, 0.01, true}},
      {"int8+ef", {CodecKind::kInt8Linear, 1024, 0.01, true}},
      {"int8", {CodecKind::kInt8Linear, 1024, 0.01, false}},
      {"topk10%+ef", {CodecKind::kTopK, 1024, 0.10, true}},
  };

  const ClusterConfig cluster = ClusterConfig::Cluster1(8);

  std::printf(
      "Ablation — communication codecs (mllib*, hinge SVM, 30 steps, "
      "8 executors)\n\n");

  for (const char* dataset : {"avazu", "kdd12"}) {
    const Dataset data = GenerateSynthetic(SpecByName(dataset, 3e-4));
    std::printf("%s-shaped (%zu x %zu)\n", dataset, data.size(),
                data.num_features());
    std::printf("  %-12s %12s %8s %12s %12s %9s\n", "codec", "MB-moved",
                "vs-dense", "sim-time(s)", "best-obj", "obj-gap%");

    double dense_mb = 0.0;
    double dense_obj = 0.0;
    for (const CodecRow& row : codecs) {
      TrainerConfig config;
      config.loss = LossKind::kHinge;
      config.base_lr = 0.3;
      config.lr_schedule = LrScheduleKind::kConstant;
      config.max_comm_steps = 30;
      config.seed = 7;
      config.codec = row.codec;

      const TrainResult result =
          MakeTrainer(SystemKind::kMllibStar, config)->Train(data, cluster);
      const double mb = static_cast<double>(result.total_bytes) / 1e6;
      const double obj = result.curve.BestObjective();
      if (row.codec.kind == CodecKind::kDenseF64) {
        dense_mb = mb;
        dense_obj = obj;
      }
      std::printf("  %-12s %12.2f %7.1fx %12.2f %12.4f %8.2f%%\n", row.label,
                  mb, dense_mb / mb, result.sim_seconds, obj,
                  100.0 * (obj - dense_obj) / std::fabs(dense_obj));
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape: int8+ef moves >4x fewer bytes than dense-f64 at "
      "an objective within 1%%, and f32/int16 are free at half/quarter "
      "cost. Sparsifying whole models (topk) loses real objective even "
      "with error feedback — sparsification wants gradient-shaped "
      "streams. Time gains trail byte gains because local compute is "
      "untouched.\n");
  return 0;
}
