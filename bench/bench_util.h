#ifndef MLLIBSTAR_BENCH_BENCH_UTIL_H_
#define MLLIBSTAR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/convergence.h"
#include "obs/chrome_trace.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "train/report.h"

namespace mllibstar {
namespace bench {

/// Directory all figure harnesses write their CSV series into.
inline std::string ResultsDir() {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  return "results";
}

/// Writes the curves for one subfigure and logs where they went.
inline void SaveCurves(const std::string& stem,
                       const std::vector<ConvergenceCurve>& curves) {
  const std::string path = ResultsDir() + "/" + stem + ".csv";
  const Status st = WriteCurvesCsv(path, curves);
  if (st.ok()) {
    std::printf("  [series written to %s]\n", path.c_str());
  } else {
    std::printf("  [could not write %s: %s]\n", path.c_str(),
                st.ToString().c_str());
  }
}

/// Writes a machine-readable bench report (the BENCH_*.json family)
/// into results/ and logs where it went. Returns the full path, or ""
/// on failure.
inline std::string WriteBenchJson(const std::string& filename,
                                  const JsonValue& doc) {
  const std::string path = ResultsDir() + "/" + filename;
  std::ofstream out(path);
  if (!out) {
    std::printf("  [could not write %s]\n", path.c_str());
    return "";
  }
  out << doc.Dump(2) << "\n";
  out.close();
  std::printf("  [bench report written to %s]\n", path.c_str());
  return path;
}

/// Filesystem-safe file stem: SystemName() uses '*' and '+'.
inline std::string SanitizeStem(std::string stem) {
  for (char& c : stem) {
    if (c == '*') c = 's';
    if (c == '+') c = 'p';
  }
  return stem;
}

/// Writes the telemetry artifacts for one finished run: a
/// Perfetto-loadable Chrome trace (results/<stem>.trace.json) when
/// `chrome_trace` is set and a unified RunReport
/// (results/<stem>.report.json) when `run_report` is set. Callers
/// that want host-side spans in the trace and metric series in the
/// report must enable Telemetry::Get() before training and Clear()
/// it between runs.
inline void ExportRunArtifacts(const TrainResult& result,
                               const std::string& stem, bool chrome_trace,
                               bool run_report) {
  const std::string safe = SanitizeStem(stem);
  Telemetry& obs = Telemetry::Get();
  if (chrome_trace) {
    const std::string path = ResultsDir() + "/" + safe + ".trace.json";
    const Status st = WriteChromeTrace(path, result.trace,
                                       obs.enabled() ? &obs : nullptr);
    if (st.ok()) {
      std::printf("  [chrome trace written to %s]\n", path.c_str());
    } else {
      std::printf("  [could not write %s: %s]\n", path.c_str(),
                  st.ToString().c_str());
    }
  }
  if (run_report) {
    const std::string path = ResultsDir() + "/" + safe + ".report.json";
    const Status st = WriteRunReport(result, path);
    if (st.ok()) {
      std::printf("  [run report written to %s]\n", path.c_str());
    } else {
      std::printf("  [could not write %s: %s]\n", path.c_str(),
                  st.ToString().c_str());
    }
  }
}

/// Telemetry-only variant of ExportRunArtifacts for harnesses whose
/// results carry no TrainResult (online_bench's OnlineResult,
/// path_bench's PathResult): the chrome trace holds the telemetry
/// spans only (no virtual-time activity rows) and the run report holds
/// the metrics/series/rounds/profiler sections plus the headline
/// numbers passed in.
inline void ExportTelemetryArtifacts(const std::string& system,
                                     double sim_seconds, uint64_t total_bytes,
                                     const std::string& stem,
                                     bool chrome_trace, bool run_report) {
  const std::string safe = SanitizeStem(stem);
  Telemetry& obs = Telemetry::Get();
  if (chrome_trace) {
    const std::string path = ResultsDir() + "/" + safe + ".trace.json";
    const TraceLog empty;
    const Status st =
        WriteChromeTrace(path, empty, obs.enabled() ? &obs : nullptr);
    if (st.ok()) {
      std::printf("  [chrome trace written to %s]\n", path.c_str());
    } else {
      std::printf("  [could not write %s: %s]\n", path.c_str(),
                  st.ToString().c_str());
    }
  }
  if (run_report) {
    const std::string path = ResultsDir() + "/" + safe + ".report.json";
    RunInfo info;
    info.system = system;
    info.sim_seconds = sim_seconds;
    info.total_bytes = total_bytes;
    const Status st =
        WriteRunReportJson(path, info, obs.enabled() ? &obs : nullptr);
    if (st.ok()) {
      std::printf("  [run report written to %s]\n", path.c_str());
    } else {
      std::printf("  [could not write %s: %s]\n", path.c_str(),
                  st.ToString().c_str());
    }
  }
}

/// Prints "label: 12.3x" or "label: n/a (baseline stuck)" speedup rows.
inline void PrintSpeedup(const char* label, std::optional<double> speedup) {
  if (speedup.has_value()) {
    std::printf("  %-34s %8.1fx\n", label, *speedup);
  } else {
    std::printf("  %-34s %8s\n", label, "n/a");
  }
}

}  // namespace bench
}  // namespace mllibstar

#endif  // MLLIBSTAR_BENCH_BENCH_UTIL_H_
