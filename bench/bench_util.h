#ifndef MLLIBSTAR_BENCH_BENCH_UTIL_H_
#define MLLIBSTAR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/convergence.h"
#include "train/report.h"

namespace mllibstar {
namespace bench {

/// Directory all figure harnesses write their CSV series into.
inline std::string ResultsDir() {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  return "results";
}

/// Writes the curves for one subfigure and logs where they went.
inline void SaveCurves(const std::string& stem,
                       const std::vector<ConvergenceCurve>& curves) {
  const std::string path = ResultsDir() + "/" + stem + ".csv";
  const Status st = WriteCurvesCsv(path, curves);
  if (st.ok()) {
    std::printf("  [series written to %s]\n", path.c_str());
  } else {
    std::printf("  [could not write %s: %s]\n", path.c_str(),
                st.ToString().c_str());
  }
}

/// Prints "label: 12.3x" or "label: n/a (baseline stuck)" speedup rows.
inline void PrintSpeedup(const char* label, std::optional<double> speedup) {
  if (speedup.has_value()) {
    std::printf("  %-34s %8.1fx\n", label, *speedup);
  } else {
    std::printf("  %-34s %8s\n", label, "n/a");
  }
}

}  // namespace bench
}  // namespace mllibstar

#endif  // MLLIBSTAR_BENCH_BENCH_UTIL_H_
