// Regularization-path benchmark: the same elastic-net λ grid solved
// twice — warm-started from each previous λ's solution, and cold from
// zeros — on one of the seven trainers. Prints the CV curve and the
// per-solve cost table, and writes results/BENCH_path.json with the
// full grid, the chosen λ, and the warm-vs-cold totals. Exits 2 if
// warm starting fails to beat the cold path on total simulated time —
// the property the subsystem exists to deliver.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "data/synthetic.h"
#include "workloads/path_search.h"

int main(int argc, char** argv) {
  using namespace mllibstar;

  FlagParser flags(
      "Elastic-net regularization path: warm vs cold over a log λ grid; "
      "writes results/BENCH_path.json.");
  flags.AddString("system", "mllib-lbfgs",
                  "trainer: mllib|mllib+ma|mllib*|petuum|petuum*|angel|"
                  "mllib-lbfgs");
  flags.AddInt64("lambdas", 8, "grid points");
  flags.AddDouble("min-ratio", 1e-3, "lambda_min / lambda_max");
  flags.AddDouble("l1-ratio", 0.5, "elastic-net mixing (1=L1, 0=L2)");
  flags.AddInt64("folds", 3, "CV folds (1 = select on training loss)");
  flags.AddInt64("classes", 0, "0 = binary logistic, K>=2 = softmax");
  flags.AddInt64("instances", 600, "dataset rows");
  flags.AddInt64("features", 120, "dataset features");
  flags.AddInt64("max-steps", 40, "per-solve communication-step budget");
  flags.AddInt64("workers", 8, "simulated workers");
  flags.AddString("out", "BENCH_path.json", "report filename (in results/)");
  flags.AddBool("chrome-trace", false,
                "export a Chrome trace of the telemetry spans (warm path)");
  flags.AddBool("run-report", false,
                "export a unified RunReport JSON (warm path)");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  const std::string system_name = flags.GetString("system");
  SystemKind system = SystemKind::kMllibLbfgs;
  for (SystemKind kind :
       {SystemKind::kMllib, SystemKind::kMllibMa, SystemKind::kMllibStar,
        SystemKind::kPetuum, SystemKind::kPetuumStar, SystemKind::kAngel,
        SystemKind::kMllibLbfgs}) {
    if (SystemName(kind) == system_name) system = kind;
  }

  const size_t num_classes =
      static_cast<size_t>(flags.GetInt64("classes"));
  Dataset data = [&] {
    if (num_classes >= 2) {
      MulticlassSpec spec;
      spec.base.name = "path-mc";
      spec.base.num_instances =
          static_cast<size_t>(flags.GetInt64("instances"));
      spec.base.num_features =
          static_cast<size_t>(flags.GetInt64("features"));
      spec.base.avg_nnz = 10;
      spec.base.seed = 91;
      spec.num_classes = num_classes;
      return GenerateMulticlass(spec);
    }
    SyntheticSpec spec;
    spec.name = "path-bin";
    spec.num_instances = static_cast<size_t>(flags.GetInt64("instances"));
    spec.num_features = static_cast<size_t>(flags.GetInt64("features"));
    spec.avg_nnz = 10;
    spec.seed = 91;
    return GenerateSynthetic(spec);
  }();

  PathConfig path;
  path.system = system;
  path.trainer.loss = LossKind::kLogistic;
  path.trainer.num_classes = num_classes;
  path.trainer.base_lr = 0.5;
  path.trainer.lr_schedule = LrScheduleKind::kConstant;
  path.trainer.batch_fraction = 0.1;
  path.trainer.max_comm_steps =
      static_cast<int>(flags.GetInt64("max-steps"));
  path.trainer.seed = 7;
  path.n_lambdas = static_cast<size_t>(flags.GetInt64("lambdas"));
  path.lambda_min_ratio = flags.GetDouble("min-ratio");
  path.l1_ratio = flags.GetDouble("l1-ratio");
  path.num_folds = static_cast<size_t>(flags.GetInt64("folds"));
  path.stratified_folds = num_classes >= 2;
  path.solve_rel_tolerance = 1e-4;
  path.path_patience = 1000;  // benchmark the whole grid
  PathConfig cold = path;
  cold.warm_start = false;

  const ClusterConfig cluster =
      ClusterConfig::Cluster1(static_cast<size_t>(flags.GetInt64("workers")));

  std::printf(
      "path_bench: %s, %zu lambdas (min-ratio %.1e), alpha=%.2f, "
      "%zu folds, %s %zux%zu\n\n",
      SystemName(system).c_str(), path.n_lambdas, path.lambda_min_ratio,
      path.l1_ratio, path.num_folds, data.name().c_str(), data.size(),
      data.num_features());

  const bool chrome_trace = flags.GetBool("chrome-trace");
  const bool run_report = flags.GetBool("run-report");
  if (chrome_trace || run_report) Telemetry::Get().set_enabled(true);

  // Telemetry window covers the warm path only, so the exported report
  // describes the subsystem's headline configuration.
  Telemetry::Get().Clear();
  const PathResult warm_result = RunPath(data, cluster, path);
  double warm_path_sim = 0.0;
  for (const PathSolve& s : warm_result.solves) warm_path_sim += s.sim_seconds;
  bench::ExportTelemetryArtifacts(SystemName(system), warm_path_sim,
                                  /*total_bytes=*/0,
                                  "path_bench_" + SystemName(system),
                                  chrome_trace, run_report);
  const PathResult cold_result = RunPath(data, cluster, cold);

  std::printf("%3s %12s %12s %10s %6s %8s %12s %12s\n", "i", "lambda",
              "cv_loss", "objective", "nnz", "steps", "warm_sim_s",
              "cold_sim_s");
  double warm_sim = 0.0, cold_sim = 0.0, warm_wall = 0.0, cold_wall = 0.0;
  for (size_t i = 0; i < warm_result.solves.size(); ++i) {
    const PathSolve& w = warm_result.solves[i];
    const double cold_s = i < cold_result.solves.size()
                              ? cold_result.solves[i].sim_seconds
                              : 0.0;
    std::printf("%3zu %12.6g %12.6g %10.5f %6llu %8d %12.3f %12.3f%s\n", i,
                w.lambda, w.cv_loss, w.objective,
                static_cast<unsigned long long>(w.nnz), w.comm_steps,
                w.sim_seconds, cold_s,
                i == warm_result.best_index ? "  <best" : "");
    warm_sim += w.sim_seconds;
    warm_wall += w.wall_seconds;
  }
  for (const PathSolve& s : cold_result.solves) {
    cold_sim += s.sim_seconds;
    cold_wall += s.wall_seconds;
  }
  const double chosen = warm_result.solves[warm_result.best_index].lambda;
  std::printf(
      "\nchosen lambda %.6g (index %zu); lambda_max %.6g%s\n"
      "warm total: %.3f sim s (%.3f wall s)\n"
      "cold total: %.3f sim s (%.3f wall s)  ->  %.2fx sim speedup\n",
      chosen, warm_result.best_index, warm_result.lambda_max,
      warm_result.early_stopped ? " (early stop)" : "", warm_sim, warm_wall,
      cold_sim, cold_wall, warm_sim > 0.0 ? cold_sim / warm_sim : 0.0);

  JsonValue report = JsonValue::Object();
  report.Set("bench", JsonValue::Str("path_bench"));
  JsonValue config_json = JsonValue::Object();
  config_json.Set("system", JsonValue::Str(SystemName(system)));
  config_json.Set("n_lambdas",
                  JsonValue::Number(static_cast<uint64_t>(path.n_lambdas)));
  config_json.Set("lambda_min_ratio",
                  JsonValue::Number(path.lambda_min_ratio));
  config_json.Set("l1_ratio", JsonValue::Number(path.l1_ratio));
  config_json.Set("num_folds",
                  JsonValue::Number(static_cast<uint64_t>(path.num_folds)));
  config_json.Set("num_classes",
                  JsonValue::Number(static_cast<uint64_t>(num_classes)));
  config_json.Set("dataset", JsonValue::Str(data.name()));
  config_json.Set("instances",
                  JsonValue::Number(static_cast<uint64_t>(data.size())));
  config_json.Set(
      "features",
      JsonValue::Number(static_cast<uint64_t>(data.num_features())));
  report.Set("config", std::move(config_json));
  report.Set("lambda_max", JsonValue::Number(warm_result.lambda_max));
  report.Set("chosen_lambda", JsonValue::Number(chosen));
  report.Set("best_index", JsonValue::Number(
                               static_cast<uint64_t>(warm_result.best_index)));
  report.Set("early_stopped", JsonValue::Bool(warm_result.early_stopped));

  JsonValue solves = JsonValue::Array();
  for (const PathSolve& s : warm_result.solves) {
    JsonValue row = JsonValue::Object();
    row.Set("lambda", JsonValue::Number(s.lambda));
    row.Set("cv_loss", JsonValue::Number(s.cv_loss));
    row.Set("objective", JsonValue::Number(s.objective));
    row.Set("nnz", JsonValue::Number(s.nnz));
    row.Set("comm_steps",
            JsonValue::Number(static_cast<int64_t>(s.comm_steps)));
    row.Set("sim_seconds", JsonValue::Number(s.sim_seconds));
    row.Set("wall_seconds", JsonValue::Number(s.wall_seconds));
    solves.Append(std::move(row));
  }
  report.Set("solves", std::move(solves));

  JsonValue totals = JsonValue::Object();
  totals.Set("warm_sim_seconds", JsonValue::Number(warm_sim));
  totals.Set("cold_sim_seconds", JsonValue::Number(cold_sim));
  totals.Set("warm_wall_seconds", JsonValue::Number(warm_wall));
  totals.Set("cold_wall_seconds", JsonValue::Number(cold_wall));
  totals.Set("sim_speedup",
             JsonValue::Number(warm_sim > 0.0 ? cold_sim / warm_sim : 0.0));
  report.Set("totals", std::move(totals));

  const std::string out = bench::WriteBenchJson(flags.GetString("out"), report);
  if (out.empty()) return 1;

  if (warm_sim >= cold_sim) {
    std::fprintf(stderr,
                 "warm path (%.3f sim s) did not beat cold (%.3f sim s)\n",
                 warm_sim, cold_sim);
    return 2;
  }
  return 0;
}
