// Ablation: Bottou's lazy (scaled-vector) L2 update vs the eager
// dense shrinkage, inside MLlib*'s local SGD. The eager variant pays
// O(d) per update; lazy pays O(nnz). On high-dimensional sparse data
// the difference is the reason SendModel is viable with L2 at all
// (paper §IV-B1).
#include <cstdio>

#include "data/synthetic.h"
#include "train/trainer.h"

int main() {
  using namespace mllibstar;

  std::printf("Ablation — lazy vs eager L2 updates in MLlib*\n\n");
  std::printf("%-8s %14s %14s %10s %12s %12s\n", "dataset", "lazy-time(s)",
              "eager-time(s)", "speedup", "lazy-obj", "eager-obj");

  for (const char* dataset : {"avazu", "kddb"}) {
    const Dataset data = GenerateSynthetic(SpecByName(dataset, 3e-4));
    const ClusterConfig cluster = ClusterConfig::Cluster1(8);

    TrainerConfig config;
    config.loss = LossKind::kHinge;
    config.regularizer = RegularizerKind::kL2;
    config.lambda = 0.1;
    config.base_lr = 0.1;
    config.lr_schedule = LrScheduleKind::kConstant;
    config.max_comm_steps = 8;

    TrainerConfig lazy_config = config;
    lazy_config.lazy_regularization = true;
    const TrainResult lazy = MakeTrainer(SystemKind::kMllibStar, lazy_config)
                                 ->Train(data, cluster);

    TrainerConfig eager_config = config;
    eager_config.lazy_regularization = false;
    const TrainResult eager =
        MakeTrainer(SystemKind::kMllibStar, eager_config)
            ->Train(data, cluster);

    std::printf("%-8s %14.2f %14.2f %9.1fx %12.4f %12.4f\n", dataset,
                lazy.sim_seconds, eager.sim_seconds,
                eager.sim_seconds / lazy.sim_seconds,
                lazy.curve.FinalObjective(), eager.curve.FinalObjective());
  }
  std::printf(
      "\nExpected shape: identical objectives (same arithmetic, "
      "reordered), with the lazy variant faster by roughly d/nnz per "
      "update — dramatic on kddb (30k features, 30 nnz/row).\n");
  return 0;
}
