// Kernel-perf trajectory harness for the SIMD-dispatched CSR kernels
// (DESIGN §13): sweeps kernel × dispatch level × precision × nnz
// regime with a min-of-repetitions timer and writes the
// machine-readable results/BENCH_kernels.json.
//
// Unlike the figure harnesses this one also *gates*: it exits 2 when
// (a) the best vectorized sparse dot — the margin kernel, where
// vectorization actually acts — fails to reach --min-speedup over
// scalar on the large-nnz regime, (b) the fused loss-gradient pass
// fails the no-regression floor (the fused number is structurally
// capped well below the dot's speedup: roughly half its time is the
// store-bound sparse axpy plus the per-row loss derivative, neither
// of which vectorization can accelerate much), or (c) the f32
// storage path drifts past the documented accuracy budget. CI runs
// it as a smoke check so kernel regressions fail the build, and the
// committed JSON pairs with results/BENCH_kernels_scalar.json (a
// forced-scalar run) to record the before/after speedup trajectory.
//
// Flags: --min-speedup=<x> (default 1.5), --repetitions=<n> (default
// 7), --out=<filename> (default BENCH_kernels.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/csr_block.h"
#include "core/gd.h"
#include "core/loss.h"
#include "core/simd/dispatch.h"
#include "core/vector.h"
#include "data/synthetic.h"

namespace mllibstar {
namespace {

// Documented f32 accuracy budget (DESIGN §13): relative drift of the
// fused loss and of the gradient L2 norm between the f32 storage path
// and the f64 reference. f32 value rounding is 2^-24 per element;
// with f64 accumulation the fused pass stays orders of magnitude
// under this.
constexpr double kF32RelBudget = 1e-4;

// No-regression floor for the fused loss-gradient pass: the best
// vectorized configuration must beat scalar by at least this much on
// the large-nnz regime. Kept deliberately modest — the fused pass
// spends ~half its time in the sparse axpy (store-bound, caps near
// 1.15×) and the per-row loss derivative, so even a 1.9× dot only
// moves the fused number to ~1.3-1.4× (Amdahl). Clamped down to
// --min-speedup so a CI run with a relaxed gate (unknown machine)
// relaxes this floor too.
constexpr double kFusedFloor = 1.1;

struct Regime {
  const char* name;
  size_t dim;      // model dimension
  size_t nnz;      // nonzeros per row
  size_t rows;     // rows for the fused CSR pass
};

// small = cache-missing gathers dominate; large = cache-resident
// model where vector arithmetic dominates (the regime the 1.5× gate
// applies to).
constexpr Regime kRegimes[] = {
    {"small_nnz", 1u << 18, 20, 4096},
    {"mid_nnz", 1u << 14, 128, 1024},
    {"large_nnz", 4096, 512, 512},
};

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Min-of-`reps` timer: runs `fn()` (one timed pass) `reps` times and
// returns the fastest wall nanoseconds. Scheduler preemption, steal
// time, and frequency dips only ever *add* time, so the minimum is
// the most stable estimate of the kernel's true cost on a shared
// box — median still wobbled ±30% run-to-run here.
template <typename F>
double MinNs(F&& fn, int reps) {
  double best = 0.0;
  fn();  // warm-up (page-in, branch predictors)
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowNs();
    fn();
    const double ns = NowNs() - t0;
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

// One sparse row: sorted unique indices into [0, dim).
struct SparseRow {
  std::vector<FeatureIndex> indices;
  std::vector<double> values;
  std::vector<float> values_f32;
};

SparseRow MakeRow(size_t dim, size_t nnz, Rng* rng) {
  SparseRow row;
  std::vector<char> used(dim, 0);
  while (row.indices.size() < nnz) {
    const FeatureIndex j = static_cast<FeatureIndex>(rng->NextUint64(dim));
    if (!used[j]) {
      used[j] = 1;
      row.indices.push_back(j);
    }
  }
  std::sort(row.indices.begin(), row.indices.end());
  for (size_t i = 0; i < nnz; ++i) {
    const double v = rng->NextDouble(-1.0, 1.0);
    row.values.push_back(v);
    row.values_f32.push_back(static_cast<float>(v));
  }
  return row;
}

struct Result {
  std::string kernel;
  std::string level;
  std::string precision;
  std::string regime;
  double ns_per_pass = 0.0;
  double items_per_sec = 0.0;
  double speedup_vs_scalar = 0.0;
};

// volatile sink so the raw-kernel loops cannot be optimized away.
volatile double g_sink = 0.0;

int Run(double min_speedup, int reps, const std::string& out_name) {
  const simd::SimdLevel detected = simd::DetectedSimdLevel();
  // The sweep's ceiling honors an MLLIBSTAR_SIMD pin, so a forced-
  // scalar run produces a true before-vectorization snapshot
  // (results/BENCH_kernels_scalar.json) rather than re-sweeping every
  // tier the CPU happens to have.
  const simd::SimdLevel top = simd::ActiveSimdLevel();
  std::printf("kernels_bench: detected SIMD level %s, sweeping up to %s, "
              "min speedup %.2fx, %d repetitions\n",
              simd::SimdLevelName(detected), simd::SimdLevelName(top),
              min_speedup, reps);

  std::vector<simd::SimdLevel> levels = {simd::SimdLevel::kScalar};
  if (top >= simd::SimdLevel::kSse2)
    levels.push_back(simd::SimdLevel::kSse2);
  if (top >= simd::SimdLevel::kAvx2)
    levels.push_back(simd::SimdLevel::kAvx2);
  if (top >= simd::SimdLevel::kAvx512)
    levels.push_back(simd::SimdLevel::kAvx512);

  std::vector<Result> results;
  Rng rng(42);
  bool perf_gate_failed = false;
  bool drift_gate_failed = false;
  double best_dot_speedup = 0.0;    // large_nnz, any vectorized tier
  double best_fused_speedup = 0.0;  // large_nnz, any vectorized tier

  // ---- Raw kernel micro-sweeps (direct table calls) -------------------
  for (const Regime& regime : kRegimes) {
    const SparseRow row = MakeRow(regime.dim, regime.nnz, &rng);
    std::vector<double> w(regime.dim);
    for (double& v : w) v = rng.NextDouble(-1.0, 1.0);
    // Size the inner loop so one timed pass is ~0.2-1 ms.
    const int inner = static_cast<int>(
        std::max<size_t>(1, (1u << 21) / std::max<size_t>(regime.nnz, 1)));

    struct RawCase {
      const char* kernel;
      const char* precision;
    };
    for (const RawCase& rc :
         {RawCase{"sparse_dot", "f64"}, RawCase{"sparse_dot", "f32"},
          RawCase{"sparse_axpy", "f64"}, RawCase{"sparse_axpy", "f32"},
          RawCase{"dense_dot", "f64"}, RawCase{"dense_axpy", "f64"}}) {
      double scalar_ns = 0.0;
      for (simd::SimdLevel level : levels) {
        const simd::KernelDispatch& k = simd::KernelsFor(level);
        double ns = 0.0;
        if (std::strcmp(rc.kernel, "sparse_dot") == 0) {
          const bool f32 = std::strcmp(rc.precision, "f32") == 0;
          ns = MinNs(
              [&] {
                double acc = 0.0;
                for (int i = 0; i < inner; ++i) {
                  acc += f32 ? k.sparse_dot_f32(w.data(),
                                                row.indices.data(),
                                                row.values_f32.data(),
                                                regime.nnz)
                             : k.sparse_dot_f64(w.data(),
                                                row.indices.data(),
                                                row.values.data(),
                                                regime.nnz);
                }
                g_sink = acc;
              },
              reps);
        } else if (std::strcmp(rc.kernel, "sparse_axpy") == 0) {
          const bool f32 = std::strcmp(rc.precision, "f32") == 0;
          ns = MinNs(
              [&] {
                for (int i = 0; i < inner; ++i) {
                  if (f32) {
                    k.sparse_axpy_f32(w.data(), row.indices.data(),
                                      row.values_f32.data(), regime.nnz,
                                      1e-9);
                  } else {
                    k.sparse_axpy_f64(w.data(), row.indices.data(),
                                      row.values.data(), regime.nnz, 1e-9);
                  }
                }
                g_sink = w[0];
              },
              reps);
        } else if (std::strcmp(rc.kernel, "dense_dot") == 0) {
          ns = MinNs(
              [&] {
                double acc = 0.0;
                for (int i = 0; i < 32; ++i) {
                  acc += k.dense_dot(w.data(), w.data(), regime.dim);
                }
                g_sink = acc;
              },
              reps);
        } else {  // dense_axpy
          ns = MinNs(
              [&] {
                for (int i = 0; i < 32; ++i) {
                  k.dense_axpy(w.data(), w.data(), regime.dim, 1e-9);
                }
                g_sink = w[0];
              },
              reps);
        }
        if (level == simd::SimdLevel::kScalar) scalar_ns = ns;
        Result res;
        res.kernel = rc.kernel;
        res.level = simd::SimdLevelName(level);
        res.precision = rc.precision;
        res.regime = regime.name;
        res.ns_per_pass = ns;
        const bool dense = std::strncmp(rc.kernel, "dense", 5) == 0;
        const double items = dense
                                 ? 32.0 * static_cast<double>(regime.dim)
                                 : static_cast<double>(inner) *
                                       static_cast<double>(regime.nnz);
        res.items_per_sec = items / (ns * 1e-9);
        res.speedup_vs_scalar = scalar_ns / ns;
        if (level != simd::SimdLevel::kScalar &&
            std::strcmp(rc.kernel, "sparse_dot") == 0 &&
            std::strcmp(regime.name, "large_nnz") == 0) {
          best_dot_speedup =
              std::max(best_dot_speedup, res.speedup_vs_scalar);
        }
        results.push_back(res);
      }
    }
  }

  // Perf gate: the dot is where vectorization acts (with hinge loss
  // the axpy is skipped on correctly-classified rows, so training is
  // dot-dominated); it must clear --min-speedup on large_nnz.
  if (top > simd::SimdLevel::kScalar &&
      best_dot_speedup < min_speedup) {
    std::printf("FAIL perf: best vectorized sparse_dot on large_nnz is "
                "%.2fx scalar (< %.2fx)\n",
                best_dot_speedup, min_speedup);
    perf_gate_failed = true;
  }

  // ---- Fused CSR passes through the dispatched vector layer ----------
  // AccumulateLossGradient (the L-BFGS oracle's worker task) and its
  // softmax twin, timed end-to-end under SetSimdLevel so the numbers
  // reflect what the trainers actually run.
  auto loss = MakeLoss(LossKind::kLogistic);
  for (const Regime& regime : kRegimes) {
    SyntheticSpec spec;
    spec.name = "kernels_bench";
    spec.num_instances = regime.rows;
    spec.num_features = regime.dim;
    spec.avg_nnz = regime.nnz;
    spec.seed = 5;
    const Dataset data = GenerateSynthetic(spec);
    const CsrBlock block = CsrBlock::FromPoints(data.points());
    DenseVector w(regime.dim);
    for (size_t i = 0; i < regime.dim; ++i) w[i] = 0.01 * rng.NextDouble();
    DenseVector grad(regime.dim);

    // f64 scalar reference outputs for the drift gate.
    double ref_loss = 0.0;
    DenseVector ref_grad(regime.dim);
    simd::SetSimdLevel(simd::SimdLevel::kScalar);
    AccumulateLossGradient(block, *loss, w, &ref_grad, &ref_loss);

    for (simd::SimdLevel level : levels) {
      for (const char* precision : {"f64", "f32"}) {
        const bool f32 = std::strcmp(precision, "f32") == 0;
        auto config_pass = [&] {
          grad.SetZero();
          double loss_sum = 0.0;
          if (f32) {
            AccumulateLossGradientF32(block, *loss, w, &grad, &loss_sum);
          } else {
            AccumulateLossGradient(block, *loss, w, &grad, &loss_sum);
          }
          g_sink = loss_sum;
        };
        auto scalar_pass = [&] {
          grad.SetZero();
          double loss_sum = 0.0;
          AccumulateLossGradient(block, *loss, w, &grad, &loss_sum);
          g_sink = loss_sum;
        };
        // Paired interleaved sampling: alternate the scalar-f64
        // reference with this configuration inside one reps loop, so
        // machine-speed drift between configs cancels out of the
        // speedup ratio (a one-shot scalar baseline timed minutes
        // earlier made the ratios swing ±30% on a busy box).
        double ns = 0.0;
        double scalar_ns = 0.0;
        simd::SetSimdLevel(simd::SimdLevel::kScalar);
        scalar_pass();  // warm-up
        simd::SetSimdLevel(level);
        config_pass();  // warm-up
        for (int r = 0; r < reps; ++r) {
          simd::SetSimdLevel(simd::SimdLevel::kScalar);
          double t0 = NowNs();
          scalar_pass();
          const double s = NowNs() - t0;
          if (r == 0 || s < scalar_ns) scalar_ns = s;
          simd::SetSimdLevel(level);
          t0 = NowNs();
          config_pass();
          const double c = NowNs() - t0;
          if (r == 0 || c < ns) ns = c;
        }
        Result res;
        res.kernel = "loss_gradient_fused";
        res.level = simd::SimdLevelName(level);
        res.precision = precision;
        res.regime = regime.name;
        res.ns_per_pass = ns;
        res.items_per_sec =
            static_cast<double>(block.nnz()) / (ns * 1e-9);
        res.speedup_vs_scalar = scalar_ns / ns;
        results.push_back(res);
        if (level != simd::SimdLevel::kScalar &&
            std::strcmp(regime.name, "large_nnz") == 0) {
          best_fused_speedup =
              std::max(best_fused_speedup, res.speedup_vs_scalar);
        }

        // Drift gate: compare this configuration's outputs against
        // the f64 scalar reference.
        grad.SetZero();
        double loss_sum = 0.0;
        if (f32) {
          AccumulateLossGradientF32(block, *loss, w, &grad, &loss_sum);
        } else {
          AccumulateLossGradient(block, *loss, w, &grad, &loss_sum);
        }
        const double loss_rel =
            std::fabs(loss_sum - ref_loss) / std::max(1.0, std::fabs(ref_loss));
        const double grad_rel =
            std::fabs(grad.Norm2() - ref_grad.Norm2()) /
            std::max(1.0, ref_grad.Norm2());
        if (!f32 && (loss_sum != ref_loss)) {
          std::printf("FAIL drift: f64 %s not bit-identical to scalar on "
                      "%s\n",
                      simd::SimdLevelName(level), regime.name);
          drift_gate_failed = true;
        }
        if (f32 && (loss_rel > kF32RelBudget || grad_rel > kF32RelBudget)) {
          std::printf("FAIL drift: f32 %s on %s loss_rel=%.3g "
                      "grad_rel=%.3g > budget %.1g\n",
                      simd::SimdLevelName(level), regime.name, loss_rel,
                      grad_rel, kF32RelBudget);
          drift_gate_failed = true;
        }
      }
    }
  }
  simd::SetSimdLevel(top);

  // Fused no-regression floor (see kFusedFloor above).
  const double fused_floor = std::min(kFusedFloor, min_speedup);
  if (top > simd::SimdLevel::kScalar &&
      best_fused_speedup < fused_floor) {
    std::printf("FAIL perf: best vectorized fused pass on large_nnz is "
                "%.2fx scalar (< floor %.2fx)\n",
                best_fused_speedup, fused_floor);
    perf_gate_failed = true;
  }

  // ---- Report ---------------------------------------------------------
  std::printf("\n%-22s %-7s %-5s %-10s %12s %10s\n", "kernel", "level",
              "prec", "regime", "ns/pass", "vs scalar");
  for (const Result& r : results) {
    std::printf("%-22s %-7s %-5s %-10s %12.0f %9.2fx\n", r.kernel.c_str(),
                r.level.c_str(), r.precision.c_str(), r.regime.c_str(),
                r.ns_per_pass, r.speedup_vs_scalar);
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", JsonValue::Str("kernels"));
  doc.Set("detected_level",
          JsonValue::Str(simd::SimdLevelName(detected)));
  doc.Set("active_level",
          JsonValue::Str(simd::SimdLevelName(simd::ActiveSimdLevel())));
  doc.Set("repetitions", JsonValue::Number(static_cast<int64_t>(reps)));
  doc.Set("min_speedup_gate", JsonValue::Number(min_speedup));
  doc.Set("fused_floor_gate", JsonValue::Number(fused_floor));
  doc.Set("f32_rel_budget", JsonValue::Number(kF32RelBudget));
  doc.Set("best_dot_speedup_large_nnz", JsonValue::Number(best_dot_speedup));
  doc.Set("best_fused_speedup_large_nnz",
          JsonValue::Number(best_fused_speedup));
  doc.Set("perf_gate_ok", JsonValue::Bool(!perf_gate_failed));
  doc.Set("drift_gate_ok", JsonValue::Bool(!drift_gate_failed));
  JsonValue runs = JsonValue::Array();
  for (const Result& r : results) {
    JsonValue e = JsonValue::Object();
    e.Set("kernel", JsonValue::Str(r.kernel));
    e.Set("level", JsonValue::Str(r.level));
    e.Set("precision", JsonValue::Str(r.precision));
    e.Set("regime", JsonValue::Str(r.regime));
    e.Set("ns_per_pass", JsonValue::Number(r.ns_per_pass));
    e.Set("items_per_sec", JsonValue::Number(r.items_per_sec));
    e.Set("speedup_vs_scalar", JsonValue::Number(r.speedup_vs_scalar));
    runs.Append(e);
  }
  doc.Set("runs", runs);
  bench::WriteBenchJson(out_name, doc);

  if (perf_gate_failed || drift_gate_failed) {
    std::printf("\nkernels_bench: GATES FAILED\n");
    return 2;
  }
  std::printf("\nkernels_bench: all gates passed\n");
  return 0;
}

}  // namespace
}  // namespace mllibstar

int main(int argc, char** argv) {
  double min_speedup = 1.5;
  int reps = 7;
  std::string out_name = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::stod(arg.substr(14));
    } else if (arg.rfind("--repetitions=", 0) == 0) {
      reps = std::stoi(arg.substr(14));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_name = arg.substr(6);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--min-speedup=X] [--repetitions=N] "
                   "[--out=FILE]\n",
                   argv[0]);
      return 1;
    }
  }
  return mllibstar::Run(min_speedup, reps, out_name);
}
