// Microbenchmarks (google-benchmark) for the numeric kernels the
// trainers are built from: sparse dot/axpy, batch gradients, local
// SGD epochs with lazy vs eager L2, and synthetic data generation.
#include <benchmark/benchmark.h>

#include "core/gd.h"
#include "core/model.h"
#include "data/synthetic.h"

namespace mllibstar {
namespace {

Dataset BenchData(size_t instances, size_t features, size_t nnz) {
  SyntheticSpec spec;
  spec.name = "bench";
  spec.num_instances = instances;
  spec.num_features = features;
  spec.avg_nnz = nnz;
  spec.seed = 3;
  return GenerateSynthetic(spec);
}

void BM_SparseDot(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  DenseVector w(dim);
  for (size_t i = 0; i < dim; ++i) w[i] = 0.5;
  SparseVector x;
  for (size_t i = 0; i < dim; i += 37) {
    x.Push(static_cast<FeatureIndex>(i), 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.Dot(x));
  }
  state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_SparseDot)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_SparseAxpy(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  DenseVector w(dim);
  SparseVector x;
  for (size_t i = 0; i < dim; i += 37) {
    x.Push(static_cast<FeatureIndex>(i), 1.0);
  }
  for (auto _ : state) {
    w.AddScaled(x, 1e-6);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_SparseAxpy)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_BatchGradient(benchmark::State& state) {
  const Dataset data = BenchData(4000, 10000, 20);
  auto loss = MakeLoss(LossKind::kLogistic);
  DenseVector w(data.num_features());
  DenseVector grad(data.num_features());
  std::vector<size_t> batch;
  for (size_t i = 0; i < data.size(); i += 10) batch.push_back(i);
  for (auto _ : state) {
    grad.SetZero();
    benchmark::DoNotOptimize(
        AccumulateBatchGradient(data.points(), batch, *loss, w, &grad));
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_BatchGradient);

void BM_SgdEpochLazyL2(benchmark::State& state) {
  const Dataset data = BenchData(2000, 50000, 20);
  auto loss = MakeLoss(LossKind::kLogistic);
  auto reg = MakeRegularizer(RegularizerKind::kL2, 0.1);
  Rng rng(7);
  for (auto _ : state) {
    DenseVector w(data.num_features());
    benchmark::DoNotOptimize(
        LocalSgdEpoch(data.points(), *loss, *reg, 0.1, true, &rng, &w));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SgdEpochLazyL2);

void BM_SgdEpochEagerL2(benchmark::State& state) {
  const Dataset data = BenchData(2000, 50000, 20);
  auto loss = MakeLoss(LossKind::kLogistic);
  auto reg = MakeRegularizer(RegularizerKind::kL2, 0.1);
  Rng rng(7);
  for (auto _ : state) {
    DenseVector w(data.num_features());
    benchmark::DoNotOptimize(
        LocalSgdEpoch(data.points(), *loss, *reg, 0.1, false, &rng, &w));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SgdEpochEagerL2);

void BM_BatchGradientCsr(benchmark::State& state) {
  // Same workload as BM_BatchGradient over the packed CSR layout; the
  // delta between the two is the pointer-chasing cost of
  // vector<DataPoint>.
  const Dataset data = BenchData(4000, 10000, 20);
  const CsrBlock block = CsrBlock::FromPoints(data.points());
  auto loss = MakeLoss(LossKind::kLogistic);
  DenseVector w(data.num_features());
  DenseVector grad(data.num_features());
  std::vector<size_t> batch;
  for (size_t i = 0; i < data.size(); i += 10) batch.push_back(i);
  for (auto _ : state) {
    grad.SetZero();
    benchmark::DoNotOptimize(
        AccumulateBatchGradient(block, batch, *loss, w, &grad));
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_BatchGradientCsr);

void BM_SgdEpochCsrLazyL2(benchmark::State& state) {
  // CSR twin of BM_SgdEpochLazyL2 (the MLlib*/Petuum* hot loop).
  const Dataset data = BenchData(2000, 50000, 20);
  const CsrBlock block = CsrBlock::FromPoints(data.points());
  auto loss = MakeLoss(LossKind::kLogistic);
  auto reg = MakeRegularizer(RegularizerKind::kL2, 0.1);
  Rng rng(7);
  for (auto _ : state) {
    DenseVector w(data.num_features());
    benchmark::DoNotOptimize(
        LocalSgdEpoch(block, *loss, *reg, 0.1, true, &rng, &w));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SgdEpochCsrLazyL2);

void BM_LossGradientFused(benchmark::State& state) {
  // The L-BFGS oracle's fused full-pass kernel over CSR.
  const Dataset data = BenchData(4000, 10000, 20);
  const CsrBlock block = CsrBlock::FromPoints(data.points());
  auto loss = MakeLoss(LossKind::kLogistic);
  DenseVector w(data.num_features());
  DenseVector grad(data.num_features());
  for (auto _ : state) {
    grad.SetZero();
    double loss_sum = 0.0;
    benchmark::DoNotOptimize(
        AccumulateLossGradient(block, *loss, w, &grad, &loss_sum));
    benchmark::DoNotOptimize(loss_sum);
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LossGradientFused);

void BM_CsrPack(benchmark::State& state) {
  // One-time packing cost a trainer pays per partition.
  const Dataset data = BenchData(4000, 10000, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrBlock::FromPoints(data.points()));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_CsrPack);

void BM_SampleBatch(benchmark::State& state) {
  // range(0) = population, range(1) = batch. The small-fraction args
  // hit Floyd's sampling (no O(n) pool); the large-fraction arg hits
  // the partial Fisher-Yates path.
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t batch = static_cast<size_t>(state.range(1));
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleBatch(n, batch, &rng));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SampleBatch)
    ->Args({1 << 20, 64})
    ->Args({1 << 20, 1 << 10})
    ->Args({1 << 20, 1 << 19});

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(BenchData(5000, 10000, 15));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_SyntheticGeneration);

void BM_Objective(benchmark::State& state) {
  const Dataset data = BenchData(20000, 10000, 15);
  auto loss = MakeLoss(LossKind::kHinge);
  auto reg = MakeRegularizer(RegularizerKind::kL2, 0.1);
  DenseVector w(data.num_features());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Objective(data.points(), *loss, *reg, w));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Objective);

}  // namespace
}  // namespace mllibstar
