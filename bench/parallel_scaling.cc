// Host-parallel scaling of the training hot path: sweeps
// host_threads x cluster workers on the Figure-4-shaped workload
// (synthetic avazu, hinge loss, MLlib* = the heaviest per-step local
// compute) and reports wall-clock seconds, speedup over the
// sequential run, and a checksum of the final weights — which must be
// identical across every host_threads value, since host parallelism
// is a pure wall-clock knob.
//
// Emits a machine-readable JSON report (default BENCH_hostpar.json)
// alongside the human-readable table. The achievable speedup is bound
// by the machine's cores; CI smoke-runs this with small settings.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "train/trainer.h"

namespace {

using namespace mllibstar;

/// FNV-1a over the exact bit patterns of the weights: any single-ulp
/// difference between runs changes the digest.
uint64_t WeightsChecksum(const DenseVector& w) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < w.dim(); ++i) {
    uint64_t bits = 0;
    const double v = w[i];
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::vector<size_t> ParseList(const std::string& text) {
  std::vector<size_t> values;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) values.push_back(std::stoul(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return values;
}

struct RunResult {
  size_t workers = 0;
  size_t host_threads = 0;
  double wall_seconds = 0.0;
  double speedup = 1.0;
  double sim_seconds = 0.0;
  uint64_t checksum = 0;
  bool bit_identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "Host-parallel scaling sweep (host_threads x workers) on the "
      "fig4-shaped MLlib* workload; writes BENCH_hostpar.json.");
  flags.AddString("dataset", "avazu", "synthetic dataset spec name");
  flags.AddString("threads", "1,2,4,8", "host_threads values to sweep");
  flags.AddString("workers", "8,32", "cluster worker counts to sweep");
  flags.AddInt64("steps", 8, "communication steps per run");
  flags.AddDouble("scale", 1e-3, "synthetic dataset scale factor");
  flags.AddString("out", "BENCH_hostpar.json", "JSON report path");
  flags.AddBool("chrome-trace", false,
                "export a Perfetto-loadable Chrome trace per run");
  flags.AddBool("run-report", false,
                "export a unified RunReport JSON per run");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  const bool chrome_trace = flags.GetBool("chrome-trace");
  const bool run_report = flags.GetBool("run-report");
  if (chrome_trace || run_report) Telemetry::Get().set_enabled(true);

  const std::string dataset_name = flags.GetString("dataset");
  const Dataset data =
      GenerateSynthetic(SpecByName(dataset_name, flags.GetDouble("scale")));
  const std::vector<size_t> thread_counts =
      ParseList(flags.GetString("threads"));
  const std::vector<size_t> worker_counts =
      ParseList(flags.GetString("workers"));

  std::printf("parallel_scaling: %s (%zu x %zu), %lld steps, host has %u "
              "hardware threads\n",
              dataset_name.c_str(), data.size(), data.num_features(),
              static_cast<long long>(flags.GetInt64("steps")),
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %12s %9s %10s %18s\n", "workers", "host_threads",
              "wall_sec", "speedup", "sim_sec", "weights_checksum");

  std::vector<RunResult> runs;
  bool all_identical = true;
  for (size_t workers : worker_counts) {
    const ClusterConfig cluster = ClusterConfig::Cluster1(workers);
    double sequential_wall = 0.0;
    uint64_t sequential_checksum = 0;
    for (size_t threads : thread_counts) {
      TrainerConfig config;
      config.loss = LossKind::kHinge;
      config.lr_schedule = LrScheduleKind::kInverseSqrt;
      config.base_lr = 0.3;
      config.max_comm_steps = static_cast<int>(flags.GetInt64("steps"));
      config.eval_every = config.max_comm_steps;  // eval off the hot path
      config.host_threads = threads;

      Telemetry::Get().Clear();
      Stopwatch watch;
      const TrainResult result =
          MakeTrainer(SystemKind::kMllibStar, config)->Train(data, cluster);
      RunResult run;
      run.workers = workers;
      run.host_threads = threads;
      run.wall_seconds = watch.ElapsedSeconds();
      run.sim_seconds = result.sim_seconds;
      run.checksum = WeightsChecksum(result.final_weights);
      if (threads == thread_counts.front()) {
        sequential_wall = run.wall_seconds;
        sequential_checksum = run.checksum;
      }
      run.speedup =
          run.wall_seconds > 0 ? sequential_wall / run.wall_seconds : 1.0;
      run.bit_identical = run.checksum == sequential_checksum;
      all_identical = all_identical && run.bit_identical;
      std::printf("%8zu %12zu %12.3f %8.2fx %10.3f %#18llx%s\n", workers,
                  threads, run.wall_seconds, run.speedup, run.sim_seconds,
                  static_cast<unsigned long long>(run.checksum),
                  run.bit_identical ? "" : "  MISMATCH");
      runs.push_back(run);
      // Exports sit outside the timed window so they never skew
      // wall_seconds.
      char stem[64];
      std::snprintf(stem, sizeof(stem), "hostpar_w%zu_t%zu", workers,
                    threads);
      bench::ExportRunArtifacts(result, stem, chrome_trace, run_report);
    }
  }
  std::printf("weights bit-identical across host_threads: %s\n",
              all_identical ? "yes" : "NO — determinism violated");

  const std::string out_path = flags.GetString("out");
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"parallel_scaling\",\n");
  std::fprintf(out, "  \"dataset\": \"%s\",\n", dataset_name.c_str());
  std::fprintf(out, "  \"system\": \"mllib*\",\n");
  std::fprintf(out, "  \"comm_steps\": %lld,\n",
               static_cast<long long>(flags.GetInt64("steps")));
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"bit_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i];
    std::fprintf(out,
                 "    {\"workers\": %zu, \"host_threads\": %zu, "
                 "\"wall_seconds\": %.6f, \"speedup\": %.4f, "
                 "\"sim_seconds\": %.6f, \"weights_checksum\": \"%#llx\"}%s\n",
                 run.workers, run.host_threads, run.wall_seconds, run.speedup,
                 run.sim_seconds,
                 static_cast<unsigned long long>(run.checksum),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 2;
}
